// Tests for the workload axes at the facade layer: spec validation, the
// process registry, sweep expansion and labelling, point-key stability, and
// end-to-end campaign determinism for mixed-process grids.

package slimnoc

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"runtime"
	"testing"

	"repro/slimnoc/store"
)

// workloadRun returns a quick runnable base for workload tests.
func workloadRun(ts TrafficSpec) RunSpec {
	return RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: ts,
		Sim:     SimSpec{WarmupCycles: 200, MeasureCycles: 500, DrainCycles: 1200, Seed: 3},
	}
}

// TestWorkloadSpecsRun executes one spec per workload axis value end to end
// through the facade and checks each delivers traffic.
func TestWorkloadSpecsRun(t *testing.T) {
	cases := map[string]TrafficSpec{
		"bernoulli": {Pattern: "rnd", Rate: 0.05},
		"burst":     {Pattern: "rnd", Rate: 0.05, Process: "burst", BurstLen: 8, Duty: 0.25},
		"mmpp":      {Pattern: "rnd", Rate: 0.05, Process: "mmpp", ModFactor: 1.8, ModPeriod: 100},
		"hotspot":   {Pattern: "rnd", Rate: 0.05, HotspotFraction: 0.2, HotspotCount: 4},
		"bimodal":   {Pattern: "rnd", Rate: 0.05, SizeMix: "bimodal"},
		"reqreply":  {Pattern: "rnd", Process: "reqreply", Window: 2},
	}
	for name, ts := range cases {
		name, ts := name, ts
		t.Run(name, func(t *testing.T) {
			res, err := Run(t.Context(), workloadRun(ts))
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.Delivered == 0 {
				t.Fatal("workload delivered nothing")
			}
			if res.Metrics.Throughput <= 0 || res.Metrics.OfferedLoad <= 0 {
				t.Errorf("accepted/offered not surfaced: %+v", res.Metrics)
			}
		})
	}
}

// TestReqReplySelfThrottles checks the closed loop's defining property
// through the facade: unlike an overdriven open-loop run, accepted and
// offered loads track each other because the window caps injection.
func TestReqReplySelfThrottles(t *testing.T) {
	res, err := Run(t.Context(), workloadRun(TrafficSpec{Pattern: "rnd", Process: "reqreply", Window: 4}))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Saturated {
		t.Error("closed loop reported saturation; the window should self-throttle")
	}
	if m.OfferedLoad == 0 || m.Throughput < 0.8*m.OfferedLoad {
		t.Errorf("accepted %.4f far below offered %.4f: closed loop not throttling", m.Throughput, m.OfferedLoad)
	}
}

// TestTrafficSpecValidation covers the workload-field rejection paths and
// the accepted boundary values.
func TestTrafficSpecValidation(t *testing.T) {
	bad := []TrafficSpec{
		{Pattern: "rnd", Rate: 0.05, Process: "nope"},
		{Pattern: "rnd", Rate: 0.05, Process: "burst", BurstLen: 0.5},
		{Pattern: "rnd", Rate: 0.05, Process: "burst", Duty: 1.5},
		{Pattern: "rnd", Rate: 0.05, Process: "mmpp", ModFactor: 3},
		{Pattern: "rnd", Rate: 0.05, Process: "mmpp", ModPeriod: 0.2},
		{Pattern: "rnd", Rate: 0.05, HotspotFraction: 1.5},
		{Pattern: "rnd", Rate: 0.05, HotspotFraction: 0.2, HotspotCount: -1},
		{Pattern: "rnd", Rate: 0.05, SizeMix: "trimodal"},
		{Pattern: "rnd", Rate: 0.05, SizeMix: "bimodal", ShortFlits: 6},
		{Pattern: "rnd", Rate: 0.05, SizeMix: "bimodal", ShortFrac: 2},
		{Pattern: "rnd", Process: "reqreply", Window: -1},
	}
	for i, ts := range bad {
		if err := workloadRun(ts).Validate(); err == nil {
			t.Errorf("bad traffic spec %d (%+v) accepted", i, ts)
		}
	}
	good := []TrafficSpec{
		{Pattern: "rnd", Rate: 0.05, Process: "BERNOULLI"}, // case-folds, canonicalizes
		{Pattern: "rnd", Rate: 0.05, SizeMix: "Fixed"},
		{Pattern: "rnd", Rate: 0.05, Process: "burst"}, // all shape params defaulted
		{Pattern: "rnd", Rate: 0.05, HotspotFraction: 1, HotspotCount: 1},
	}
	for i, ts := range good {
		if err := workloadRun(ts).Validate(); err != nil {
			t.Errorf("good traffic spec %d rejected: %v", i, err)
		}
	}
	// Oversized hotspot counts are a build-time error (they need the node
	// count), not a validation error.
	if _, err := Run(t.Context(), workloadRun(TrafficSpec{Pattern: "rnd", Rate: 0.05,
		HotspotFraction: 0.2, HotspotCount: 1000})); err == nil {
		t.Error("hotspot_count larger than the network accepted")
	}
}

// TestProcessRegistryComplete builds every registered process's example spec
// into a source, mirroring the other registry completeness tests.
func TestProcessRegistryComplete(t *testing.T) {
	net, _, err := BuildNetwork(NetworkSpec{Preset: "t2d54"})
	if err != nil {
		t.Fatal(err)
	}
	names := Processes()
	if len(names) < 4 {
		t.Fatalf("expected at least 4 processes, have %v", names)
	}
	for _, name := range names {
		e, ok := ProcessByName(name)
		if !ok {
			t.Errorf("%s: listed but not resolvable", name)
			continue
		}
		if e.Section == "" {
			t.Errorf("%s: no section recorded", name)
		}
		ex := e.Example.normalizedExampleFor(name)
		te, ok := TrafficByName(ex.Pattern)
		if !ok {
			t.Errorf("%s: example pattern %q unregistered", name, ex.Pattern)
			continue
		}
		src, err := te.New(net, ex)
		if err != nil {
			t.Errorf("%s: example does not build: %v", name, err)
			continue
		}
		if src == nil {
			t.Errorf("%s: nil source", name)
		}
	}
}

// normalizedExampleFor asserts the example names its own process (modulo the
// bernoulli canonicalization) and returns it with spec normalization applied.
func (ts TrafficSpec) normalizedExampleFor(name string) TrafficSpec {
	spec := RunSpec{Network: NetworkSpec{Preset: "t2d54"}, Traffic: ts}.Normalized()
	got := spec.Traffic.Process
	if got == "" {
		got = "bernoulli"
	}
	if got != name {
		panic("example process " + got + " does not match registry name " + name)
	}
	return spec.Traffic
}

// TestSweepProcessAxis pins the new axis: expansion order, per-point
// process override, and workload tokens in point names.
func TestSweepProcessAxis(t *testing.T) {
	sweep := SweepSpec{
		Name: "mix",
		Base: RunSpec{
			Network: NetworkSpec{Preset: "t2d54"},
			Traffic: TrafficSpec{Rate: 0.05, BurstLen: 4},
			Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 600, Seed: 7},
		},
		Axes: SweepAxes{
			Patterns:  []string{"rnd", "shf"},
			Processes: []string{"bernoulli", "burst"},
			Loads:     []float64{0.02, 0.05},
		},
	}
	if got := sweep.NumPoints(); got != 8 {
		t.Fatalf("NumPoints = %d, want 8", got)
	}
	points, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	// Nesting: patterns > processes > loads.
	wantProc := []string{"", "", "burst", "burst", "", "", "burst", "burst"}
	for i, p := range points {
		if p.Traffic.Process != wantProc[i] {
			t.Errorf("point %d process %q, want %q", i, p.Traffic.Process, wantProc[i])
		}
	}
	// The base's BurstLen is inert under bernoulli — normalization clears
	// it, so the bernoulli points carry no workload token at all — and live
	// under burst, where it labels the point.
	if points[0].Name != "mix/rnd/load0.020" {
		t.Errorf("bernoulli point name %q (inert shape fields must not label)", points[0].Name)
	}
	if points[0].Traffic.BurstLen != 0 {
		t.Errorf("bernoulli point kept inert burst_len %g", points[0].Traffic.BurstLen)
	}
	if points[2].Name != "mix/rnd/load0.020/burst/bl4" {
		t.Errorf("burst point name %q, want the process token", points[2].Name)
	}
	// Workload tokens distinguish points that differ only in process.
	if points[0].Name == points[2].Name {
		t.Error("mixed-process points share a name")
	}
}

// TestTrafficLabel covers the token renderer directly.
func TestTrafficLabel(t *testing.T) {
	if got := TrafficLabel(TrafficSpec{Pattern: "rnd", Rate: 0.06}); len(got) != 0 {
		t.Errorf("default traffic produced tokens %v", got)
	}
	full := TrafficSpec{Pattern: "rnd", Rate: 0.06, Process: "burst", BurstLen: 8, Duty: 0.25,
		HotspotFraction: 0.2, HotspotCount: 4, SizeMix: "bimodal", Window: 4}
	got := TrafficLabel(full)
	want := []string{"burst", "bl8", "duty0.25", "hot0.2x4", "bimodal", "w4"}
	if len(got) != len(want) {
		t.Fatalf("tokens %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestCampaignMixedProcessSerialMatchesParallel extends the core campaign
// determinism contract to the workload axes: a sweep mixing temporal
// processes, hotspot overlays and the closed loop yields byte-identical
// per-point metrics at any job count.
func TestCampaignMixedProcessSerialMatchesParallel(t *testing.T) {
	base := RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Rate: 0.05, HotspotFraction: 0.1},
		Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 800, Seed: 11},
	}
	sweep := SweepSpec{
		Name: "mixed",
		Base: base,
		Axes: SweepAxes{
			Patterns:  []string{"rnd"},
			Processes: []string{"bernoulli", "burst", "mmpp", "reqreply"},
			Seeds:     []int64{11, 12},
		},
	}
	run := func(jobs int) []PointResult {
		points, err := sweep.Points()
		if err != nil {
			t.Fatal(err)
		}
		results, err := RunCampaign(t.Context(), points, WithJobs(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial := run(1)
	parallel := run(runtime.NumCPU())
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("point %d errors: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		sm, _ := json.Marshal(serial[i].Result.Metrics)
		pm, _ := json.Marshal(parallel[i].Result.Metrics)
		if !bytes.Equal(sm, pm) {
			t.Errorf("point %d (%s): serial %s != parallel %s", i, serial[i].Spec.Name, sm, pm)
		}
	}
}

// TestPointKeyWorkloadFields pins the key behaviour of the new axes: the
// canonicalized defaults hash like their omitted spellings (so old stores
// stay valid), while every execution-relevant workload field changes the key.
func TestPointKeyWorkloadFields(t *testing.T) {
	base := workloadRun(TrafficSpec{Pattern: "rnd", Rate: 0.05})
	k0, err := PointKey(base)
	if err != nil {
		t.Fatal(err)
	}
	spelled := base
	spelled.Traffic.Process = "bernoulli"
	spelled.Traffic.SizeMix = "fixed"
	ks, err := PointKey(spelled)
	if err != nil {
		t.Fatal(err)
	}
	if ks != k0 {
		t.Error("spelled-out defaults (bernoulli, fixed) hash differently from omitted ones")
	}
	// Shape fields the selected process never reads are cleared by
	// normalization, so a behaviorally identical spec shares the key (and
	// the store entry) of the plain one.
	inert := base
	inert.Traffic.BurstLen = 4 // bernoulli never reads it
	inert.Traffic.Window = 9   // open loop never reads it
	ki, err := PointKey(inert)
	if err != nil {
		t.Fatal(err)
	}
	if ki != k0 {
		t.Error("inert shape fields changed the point key of an identical run")
	}
	// The closed loop ignores the open-loop rate: two reqreply specs that
	// differ only in rate are the same run and must share one key.
	rr1, rr2 := base, base
	rr1.Traffic.Process, rr1.Traffic.Rate = "reqreply", 0.1
	rr2.Traffic.Process, rr2.Traffic.Rate = "reqreply", 0.2
	krr1, err := PointKey(rr1)
	if err != nil {
		t.Fatal(err)
	}
	krr2, err := PointKey(rr2)
	if err != nil {
		t.Fatal(err)
	}
	if krr1 != krr2 {
		t.Error("reqreply specs differing only in the inert rate hash differently")
	}
	// Trace workloads ignore the whole composable axis.
	tr1 := workloadRun(TrafficSpec{Pattern: "trace", Trace: "fft"})
	tr2 := workloadRun(TrafficSpec{Pattern: "trace", Trace: "fft", Process: "burst", HotspotFraction: 0.2})
	kt1, err := PointKey(tr1)
	if err != nil {
		t.Fatal(err)
	}
	kt2, err := PointKey(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if kt1 != kt2 {
		t.Error("trace specs differing only in inert workload fields hash differently")
	}
	mutations := map[string]func(*TrafficSpec){
		"process":      func(ts *TrafficSpec) { ts.Process = "burst" },
		"burst_len":    func(ts *TrafficSpec) { ts.Process = "burst"; ts.BurstLen = 16 },
		"duty":         func(ts *TrafficSpec) { ts.Process = "burst"; ts.Duty = 0.5 },
		"mod_factor":   func(ts *TrafficSpec) { ts.Process = "mmpp"; ts.ModFactor = 1.5 },
		"hotspot":      func(ts *TrafficSpec) { ts.HotspotFraction = 0.2 },
		"hotspot_knob": func(ts *TrafficSpec) { ts.HotspotFraction = 0.2; ts.HotspotCount = 8 },
		"size_mix":     func(ts *TrafficSpec) { ts.SizeMix = "bimodal" },
		"short_frac":   func(ts *TrafficSpec) { ts.SizeMix = "bimodal"; ts.ShortFrac = 0.8 },
		"window":       func(ts *TrafficSpec) { ts.Process = "reqreply"; ts.Window = 8 },
	}
	seen := map[store.Key]string{k0: "base"}
	for name, mut := range mutations {
		s := base
		mut(&s.Traffic)
		k, err := PointKey(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestCSVSinkWorkloadColumns checks the sink emits the full traffic axis so
// mixed-process result files stay distinguishable.
func TestCSVSinkWorkloadColumns(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	spec := workloadRun(TrafficSpec{Pattern: "rnd", Rate: 0.05, Process: "burst",
		BurstLen: 8, Duty: 0.25, HotspotFraction: 0.2, HotspotCount: 4,
		SizeMix: "bimodal", Window: 0}).Normalized()
	if err := sink.Emit(PointResult{Index: 0, Spec: spec, Result: &Result{}}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]string{}
	for i, name := range rows[0] {
		col[name] = rows[1][i]
	}
	want := map[string]string{
		"process": "burst", "burst_len": "8", "duty": "0.25",
		"hotspot_frac": "0.2", "hotspot_count": "4", "size_mix": "bimodal",
	}
	for name, v := range want {
		if col[name] != v {
			t.Errorf("CSV column %s = %q, want %q", name, col[name], v)
		}
	}
	// The default process is spelled out, not blank, and defaulted shape
	// parameters report the RESOLVED values the run used, never raw zeros.
	var buf2 bytes.Buffer
	sink2 := NewCSVSink(&buf2)
	for _, ts := range []TrafficSpec{
		{Pattern: "rnd", Rate: 0.05},
		{Pattern: "rnd", Rate: 0.05, Process: "burst"}, // shape fully defaulted
	} {
		if err := sink2.Emit(PointResult{Index: 0,
			Spec: workloadRun(ts).Normalized(), Result: &Result{}}); err != nil {
			t.Fatal(err)
		}
	}
	rows2, err := csv.NewReader(&buf2).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col2 := func(row []string, name string) string {
		for i, h := range rows2[0] {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("missing column %s", name)
		return ""
	}
	if got := col2(rows2[1], "process"); got != "bernoulli" {
		t.Errorf("default process column = %q, want bernoulli", got)
	}
	if bl, d := col2(rows2[2], "burst_len"), col2(rows2[2], "duty"); bl != "8" || d != "0.25" {
		t.Errorf("defaulted burst row reports burst_len=%s duty=%s, want resolved 8/0.25", bl, d)
	}
}
