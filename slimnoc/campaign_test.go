package slimnoc

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/topo"
)

// campaignSweep returns a quick multi-point sweep exercising two networks,
// two patterns and two loads with tiny cycle counts.
func campaignSweep() SweepSpec {
	return testSweep()
}

// runSweepPoints expands campaignSweep and executes it with the given jobs.
func runSweepPoints(t *testing.T, jobs int, opts ...CampaignOption) []PointResult {
	t.Helper()
	points, err := campaignSweep().Points()
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunCampaign(t.Context(), points, append(opts, WithJobs(jobs))...)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestCampaignParallelMatchesSerial is the core determinism contract: the
// same sweep run serially and with jobs=NumCPU yields byte-identical
// per-point metrics, because every point's seed is fixed at expansion time.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	serial := runSweepPoints(t, 1)
	parallel := runSweepPoints(t, runtime.NumCPU())
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d points, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("point %d errors: serial %v, parallel %v", i, serial[i].Err, parallel[i].Err)
		}
		sm, err := json.Marshal(serial[i].Result.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := json.Marshal(parallel[i].Result.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sm, pm) {
			t.Errorf("point %d (%s): serial metrics %s != parallel %s",
				i, serial[i].Spec.Name, sm, pm)
		}
	}
}

// TestCampaignResultsOrderedAndComplete checks every submitted point comes
// back at its own index with its own spec.
func TestCampaignResultsOrderedAndComplete(t *testing.T) {
	points, err := campaignSweep().Points()
	if err != nil {
		t.Fatal(err)
	}
	results := runSweepPoints(t, 3)
	if len(results) != len(points) {
		t.Fatalf("%d results for %d points", len(results), len(points))
	}
	for i, p := range results {
		if p.Index != i {
			t.Errorf("result %d carries index %d", i, p.Index)
		}
		if p.Spec.Name != points[i].Name {
			t.Errorf("result %d spec %q, want %q", i, p.Spec.Name, points[i].Name)
		}
		if p.Result == nil || p.Result.Metrics.Delivered == 0 {
			t.Errorf("point %d delivered nothing", i)
		}
	}
}

// TestCampaignNetworkCacheSharing checks the engine builds each distinct
// network spec exactly once per Run, however many points share it.
func TestCampaignNetworkCacheSharing(t *testing.T) {
	var builds atomic.Int32
	RegisterTopology("cachecount", TopologyEntry{
		Build: func(ns NetworkSpec) (*Network, Kind, error) {
			builds.Add(1)
			return topo.Mesh2D(3, 3, 2), Kind{Class: ClassMesh, RX: 3, RY: 3}, nil
		},
		Section: "test-only (campaign network cache)",
		Example: NetworkSpec{Topology: "cachecount"},
	})
	var points []RunSpec
	for i := 0; i < 6; i++ {
		points = append(points, RunSpec{
			Network: NetworkSpec{Topology: "cachecount"},
			Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
			Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 200, DrainCycles: 400, Seed: int64(i + 1)},
		})
	}
	results, err := RunCampaign(t.Context(), points, WithJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range results {
		if p.Err != nil {
			t.Fatalf("point %d: %v", i, p.Err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("network built %d times, want 1", n)
	}
}

// TestCampaignPartialResultsOnCancel cancels mid-campaign and checks the
// partial result set: executed points keep results, the rest carry the
// context error, and Run reports cancellation.
func TestCampaignPartialResultsOnCancel(t *testing.T) {
	base := RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
		// Long enough that the tail of the batch is still queued or
		// in-flight when the first completion cancels.
		Sim: SimSpec{WarmupCycles: 1000, MeasureCycles: 30000, DrainCycles: 30000, Seed: 2},
	}
	sweep := SweepSpec{
		Name: "cancel",
		Base: base,
		Axes: SweepAxes{Loads: []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08}},
	}
	points, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	results, err := RunCampaign(ctx, points,
		WithJobs(2),
		WithOnPoint(func(PointResult) { once.Do(cancel) }))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign error %v, want context.Canceled", err)
	}
	if len(results) != len(points) {
		t.Fatalf("%d results for %d points", len(results), len(points))
	}
	completed, cancelled := 0, 0
	for i, p := range results {
		switch {
		case p.Result != nil && p.Err == nil:
			completed++
		case p.Err != nil:
			if !errors.Is(p.Err, context.Canceled) {
				t.Errorf("point %d error %v does not wrap context.Canceled", i, p.Err)
			}
			cancelled++
		default:
			t.Errorf("point %d has neither result nor error", i)
		}
	}
	if completed == 0 {
		t.Error("no point completed before cancellation")
	}
	if cancelled == 0 {
		t.Error("cancellation stopped nothing: all points completed")
	}
}

// TestCampaignSinks checks the JSONL and CSV sinks receive every point and
// serialize it parseably.
func TestCampaignSinks(t *testing.T) {
	var jsonl, csvBuf bytes.Buffer
	collector := &Collector{}
	results := runSweepPoints(t, 2,
		WithSink(NewJSONLSink(&jsonl)),
		WithSink(NewCSVSink(&csvBuf)),
		WithSink(collector))

	// JSONL: one parseable object per point, indices covering the sweep.
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != len(results) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), len(results))
	}
	seen := map[int]bool{}
	for _, line := range lines {
		var p PointResult
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if p.Result == nil || p.Result.Metrics.Cycles == 0 {
			t.Errorf("JSONL point %d has no metrics", p.Index)
		}
		seen[p.Index] = true
	}
	if len(seen) != len(results) {
		t.Errorf("JSONL covers %d distinct indices, want %d", len(seen), len(results))
	}

	// CSV: header plus one row per point.
	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(results)+1 {
		t.Fatalf("CSV has %d rows, want %d", len(rows), len(results)+1)
	}
	for i, col := range CSVHeader {
		if rows[0][i] != col {
			t.Errorf("CSV header column %d = %q, want %q", i, rows[0][i], col)
		}
	}

	// Collector: index-sorted and complete.
	got := collector.Points()
	if len(got) != len(results) {
		t.Fatalf("collector has %d points", len(got))
	}
	for i, p := range got {
		if p.Index != i {
			t.Errorf("collector point %d has index %d", i, p.Index)
		}
	}
}

// TestCampaignPointError checks an invalid point fails alone without
// aborting the rest of the batch.
func TestCampaignPointError(t *testing.T) {
	good := RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
		Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 200, DrainCycles: 400, Seed: 1},
	}
	bad := good
	bad.Network = NetworkSpec{Preset: "no_such_net"}
	results, err := RunCampaign(t.Context(), []RunSpec{good, bad, good}, WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good points failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("bad point succeeded")
	}
	if results[1].Error == "" {
		t.Error("bad point has no serializable error text")
	}
}

// TestCampaignSharedNetworkRace runs many concurrent simulations on one
// WithNetwork-shared network. Under -race this pins the contract that
// sim.New/Run never mutate a supplied topo.Network.
func TestCampaignSharedNetworkRace(t *testing.T) {
	net, kind, err := BuildNetwork(NetworkSpec{Preset: "t2d54"})
	if err != nil {
		t.Fatal(err)
	}
	var points []RunSpec
	for i := 0; i < 12; i++ {
		points = append(points, RunSpec{
			Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.02 + 0.005*float64(i)},
			Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 600, Seed: int64(i + 1)},
		})
	}
	results, err := RunCampaign(t.Context(), points,
		WithJobs(runtime.NumCPU()),
		WithPointOptions(func(int, RunSpec) []Option {
			return []Option{WithNetwork(net, kind)}
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range results {
		if p.Err != nil {
			t.Errorf("point %d: %v", i, p.Err)
		}
	}
	if err := net.Validate(); err != nil {
		t.Errorf("shared network mutated: %v", err)
	}
}
