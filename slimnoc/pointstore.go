package slimnoc

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/sim"
	"repro/slimnoc/store"
)

// EngineVersion identifies the simulator-core generation; see
// sim.EngineVersion. It participates in every PointKey so a result store
// written by one engine generation is never served to another.
const EngineVersion = sim.EngineVersion

// pointKeySalt versions both the stored record schema (the Result JSON) and
// the engine that produced it. Bump the schema component when Result's
// serialized form changes incompatibly; the engine component moves with
// sim.EngineVersion.
const pointKeySalt = "slimnoc.Result/v1|engine=" + EngineVersion

// PointKey returns the content address of one campaign point: the SHA-256
// of the canonical-JSON form of the normalized spec with its network
// expanded (ExpandNetwork, like the campaign's own network cache), salted
// with the store schema and engine versions. Two specs that describe the
// same run — regardless of JSON field order, defaulted fields spelled out
// or omitted, registry-name casing, or a preset versus its explicit
// parameters — share one key. The Name label is excluded from the hash: it
// never affects execution, so a store computed by one sweep serves every
// later sweep or figure that contains the same physical point under a
// different label. Hashing the expanded network also means a preset
// redefinition changes keys instead of serving stale results under the
// unchanged preset name. The canonical bytes and hashes are pinned by
// golden fixtures (testdata/pointkey_golden.json): a spec-schema change
// that silently reshapes keys fails CI instead of quietly orphaning stored
// results.
func PointKey(spec RunSpec) (store.Key, error) {
	n := spec.Normalized()
	n.Name = ""
	expanded, err := ExpandNetwork(n.Network)
	if err != nil {
		return "", err
	}
	n.Network = expanded
	return store.KeyOf(pointKeySalt, n)
}

// WithStore attaches a content-addressed result store to the campaign,
// making it resumable: before executing a point the campaign looks up its
// PointKey and serves a stored Result instead of simulating (the point
// emits with Cached set), and every freshly completed point is durably
// appended to the store before its result is reported. Interrupting a
// campaign therefore loses only in-flight points — rerunning the same sweep
// against the same store completes the missing ones and returns a result
// set byte-identical to an uninterrupted run (pinned by
// TestCampaignStoreResumeIdentity).
//
// Cached results are decoded from JSON, so their Raw simulator block
// (Result.Raw, excluded from serialization) is zero; consumers of Raw
// should run without a store. A store may be shared across campaigns and
// sweeps: keys hash the full point identity, so only genuinely identical
// points are deduplicated. Failed or cancelled points are never stored.
//
// WithStore and WithPointOptions are mutually exclusive in effect: a
// point's key hashes only its declarative spec, and per-point options
// (custom sources, replacement networks, adaptive policies) change what a
// run computes without changing its spec. A campaign with point options
// therefore bypasses the store entirely — every point simulates, nothing
// is served or persisted — rather than risk serving or storing results
// under a key that does not describe them.
func WithStore(st *store.Store) CampaignOption {
	return func(c *Campaign) { c.store = st }
}

// execPoint runs one point through the store, when attached: a hit is
// served as-is, a miss is simulated and persisted. Undecodable stored
// values (schema drift) are treated as misses and superseded.
func (c *Campaign) execPoint(ctx context.Context, i int, spec RunSpec, cache *netCache) (*Result, bool, error) {
	var key store.Key
	if c.store != nil && c.pointOpts == nil {
		k, kerr := PointKey(spec)
		if kerr != nil {
			// An unhashable spec cannot be stored or resumed; failing the
			// point loudly beats silently breaking the resume contract (the
			// run itself would reject the same malformed spec anyway).
			return nil, false, fmt.Errorf("slimnoc: store: point key: %w", kerr)
		}
		key = k
		if raw, ok := c.store.Get(k); ok {
			var res Result
			if jerr := json.Unmarshal(raw, &res); jerr == nil {
				// The stored Spec carries the label of whichever sweep
				// computed the point first; restore the requested one so a
				// resumed or cross-sweep hit is indistinguishable from a
				// fresh run.
				res.Spec = spec
				return &res, true, nil
			}
		}
	}
	res, err := c.runPoint(ctx, i, spec, cache)
	if err == nil && key != "" {
		raw, serr := json.Marshal(res)
		if serr == nil {
			serr = c.store.Put(key, raw)
		}
		if serr != nil {
			// The simulation succeeded but durability failed: surface it,
			// or an "interrupted" campaign would silently not resume.
			return res, false, fmt.Errorf("slimnoc: store: %w", serr)
		}
	}
	return res, false, err
}
