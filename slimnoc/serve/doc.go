// Package serve turns the simulator into a co-simulation latency oracle:
// a long-lived service that external execution engines (host simulators,
// schedulers, performance models) query for cycle-accurate transfer
// latencies instead of linking the simulator in or re-running whole
// campaigns.
//
// The wire protocol is versioned JSON lines — one request object per line,
// one response per line, in order — over any stream transport
// (stdin/stdout of the snserve binary, a TCP connection, or an in-process
// pipe). Verbs: hello (version + engine negotiation), estimate (one
// transfer's idle-network latency), batch (N transfers contending in one
// engine episode), occupy and window (per-link occupancy windows that model
// backpressure on the client's timeline), stats, shutdown. The full field
// matrix lives in docs/SERVING.md.
//
// Behind the protocol sit two shared structures. The Pool multiplexes
// sessions over warm engines keyed by canonical estimator spec — network,
// routing, and VC configuration are built once and shared read-only — and
// bounds concurrent engine activations so overload queues instead of
// thrashing. The Cache content-addresses every estimate episode in a
// store.Store, salted with the engine version exactly like slimnoc's
// PointKey, so repeated queries are served without simulating, across
// sessions and server restarts, and an engine bump can never serve stale
// numbers.
//
// Client is the Go-side library: connection management, the hello
// handshake, pipelined submission with a bounded in-flight window
// (server backpressure reaches callers by blocking, not queue growth),
// and typed wrappers for every verb.
package serve
