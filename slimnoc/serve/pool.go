package serve

import (
	"context"
	"runtime"
	"sync"

	"repro/slimnoc"
	"repro/slimnoc/store"
)

// Pool multiplexes sessions over a small set of warm engines. It has two
// jobs:
//
//   - Warm-engine sharing: estimators are keyed by their canonical spec
//     (slimnoc.EstimatorSpec — expanded network, static routing, VCs,
//     buffering, hop factor), built at most once, and shared read-only by
//     every session that negotiates the same engine — the same contract the
//     Campaign netCache uses for networks and route tables.
//   - Activation bounding: each engine episode (an actual simulation)
//     holds one of Size activation slots while it runs. More concurrent
//     sessions than slots simply queue, which is how server-side
//     backpressure reaches clients without dropping requests.
//
// A Pool is safe for concurrent use by any number of sessions.
type Pool struct {
	slots chan struct{}

	// EngineJobs is copied onto every estimator the pool builds (see
	// slimnoc.Estimator.EngineJobs): each episode's engine steps across
	// that many parallel spatial domains, with byte-identical latencies at
	// every value — so it does not enter the engine key or the response
	// cache identity. Set before the pool serves sessions.
	EngineJobs int

	mu      sync.Mutex
	engines map[string]*poolEntry
}

// poolEntry memoizes one warm-engine build, errors included.
type poolEntry struct {
	once sync.Once
	est  *slimnoc.Estimator
	err  error
}

// NewPool builds a pool with the given number of activation slots
// (<= 0 selects runtime.NumCPU()).
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.NumCPU()
	}
	return &Pool{
		slots:   make(chan struct{}, size),
		engines: make(map[string]*poolEntry),
	}
}

// Size returns the activation-slot count.
func (p *Pool) Size() int { return cap(p.slots) }

// Engine returns the warm estimator for the spec, building it on first
// use. Two specs that canonicalize identically (preset vs explicit
// parameters, defaulted fields, irrelevant traffic/sim sections) share one
// engine.
func (p *Pool) Engine(spec slimnoc.RunSpec) (*slimnoc.Estimator, error) {
	canon, err := slimnoc.EstimatorSpec(spec)
	if err != nil {
		return nil, err
	}
	keyBytes, err := store.Canonical(canon)
	if err != nil {
		return nil, err
	}
	key := string(keyBytes)
	p.mu.Lock()
	e, ok := p.engines[key]
	if !ok {
		e = &poolEntry{}
		p.engines[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		e.est, e.err = slimnoc.NewEstimator(canon)
		if e.err == nil {
			e.est.EngineJobs = p.EngineJobs
		}
	})
	return e.est, e.err
}

// Engines returns the number of warm engines resident (failed builds
// included until evicted by a successful rebuild of the same key — they
// are cheap placeholders).
func (p *Pool) Engines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.engines)
}

// Acquire takes one activation slot, blocking while all are in use; it
// returns ctx's error if the context ends first. Every Acquire must be
// paired with Release.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns an activation slot taken by Acquire.
func (p *Pool) Release() { <-p.slots }
