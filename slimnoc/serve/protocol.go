package serve

import (
	"fmt"

	"repro/slimnoc"
)

// ProtocolVersion is the JSON-line protocol generation this package speaks.
// A hello naming a different version is rejected; omitting the version
// selects the current one. Bump on any wire-incompatible change.
const ProtocolVersion = 1

// DefaultFlitBytes is the payload a flit carries when converting byte
// counts to flit counts (16 B — a 128-bit link, the paper's §5.1 setup).
// Sessions may negotiate a different value in hello.
const DefaultFlitBytes = 16

// Protocol verbs. One request object per line; the server answers every
// request with exactly one response line carrying the same op and id.
const (
	// OpHello opens a session: protocol version check plus engine
	// negotiation (the RunSpec naming network, routing, VCs, buffering).
	OpHello = "hello"
	// OpEstimate asks for the cycle-accurate latency of one transfer on an
	// otherwise idle network.
	OpEstimate = "estimate"
	// OpBatch estimates N transfers in one engine episode: all injected at
	// cycle 0, contending like simultaneously issued DMAs.
	OpBatch = "batch"
	// OpOccupy schedules a transfer under the session's link-occupancy
	// windows: its start is pushed past the busy windows of every link on
	// its route, and its own window is then reserved — the uPIMulator-style
	// backpressure coupling.
	OpOccupy = "occupy"
	// OpWindow inspects (or resets) the session's occupancy state.
	OpWindow = "window"
	// OpStats reports the server's deterministic service counters.
	OpStats = "stats"
	// OpShutdown ends the session and stops the server.
	OpShutdown = "shutdown"
)

// WireTransfer names one transfer in a request: size as either bytes
// (converted at the session's flit width) or flits (taking precedence).
type WireTransfer struct {
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	Bytes int64 `json:"bytes,omitempty"`
	Flits int   `json:"flits,omitempty"`
}

// Request is one protocol request line. Op selects the verb; the other
// fields are read per-verb (see docs/SERVING.md for the full field matrix).
type Request struct {
	Op string `json:"op"`
	// ID is a client-chosen correlation tag echoed verbatim in the
	// response, enabling pipelined submission.
	ID int64 `json:"id,omitempty"`

	// Version is the protocol version the client speaks (hello; 0 = current).
	Version int `json:"version,omitempty"`
	// FlitBytes sets the session's byte-to-flit conversion width (hello;
	// 0 = DefaultFlitBytes).
	FlitBytes int `json:"flit_bytes,omitempty"`
	// Spec names the engine: network, routing, VCs, buffering, SMART. The
	// traffic and sim sections are ignored (see slimnoc.EstimatorSpec).
	Spec *slimnoc.RunSpec `json:"spec,omitempty"`

	// Src/Dst are transfer endpoints (estimate, occupy; optional route
	// selector for window). Pointers so that node 0 survives omitempty.
	Src *int `json:"src,omitempty"`
	Dst *int `json:"dst,omitempty"`
	// Bytes/Flits size the transfer (estimate, occupy).
	Bytes int64 `json:"bytes,omitempty"`
	Flits int   `json:"flits,omitempty"`
	// Start is the earliest cycle the transfer may begin (occupy).
	Start int64 `json:"start,omitempty"`

	// Transfers is the batch payload (batch).
	Transfers []WireTransfer `json:"transfers,omitempty"`

	// Reset clears the session's occupancy windows (window).
	Reset bool `json:"reset,omitempty"`
}

// Grant is the occupy response payload: when the transfer was allowed to
// start, when it finishes, and how long backpressure delayed it.
type Grant struct {
	// Requested echoes the start cycle the client asked for.
	Requested int64 `json:"requested"`
	// Start is the granted start cycle: the first cycle at or after
	// Requested at which every link of the route is free.
	Start int64 `json:"start"`
	// Finish is Start plus the transfer's estimated latency; every link of
	// the route is reserved (busy) until then.
	Finish int64 `json:"finish"`
	// LatencyCycles is the transfer's isolated estimate.
	LatencyCycles int64 `json:"latency_cycles"`
	// Waited is Start - Requested: the backpressure penalty.
	Waited int64 `json:"waited"`
	// Hops is the route's router-path hop count.
	Hops int `json:"hops"`
}

// WindowInfo is the window response payload.
type WindowInfo struct {
	// Horizon is the latest busy-until cycle across all links (0 = idle).
	Horizon int64 `json:"horizon"`
	// BusyLinks counts links with an active occupancy window.
	BusyLinks int `json:"busy_links"`
	// FreeAt, present when the request named a route (src/dst), is the
	// earliest cycle a transfer on that route could start now.
	FreeAt *int64 `json:"free_at,omitempty"`
}

// Stats is the deterministic service-counter block: no wall-clock, no
// scheduling artifacts, so a scripted session always produces the same
// stats line (the protocol golden fixture relies on this).
type Stats struct {
	// Sessions counts sessions ever opened (hello accepted).
	Sessions int64 `json:"sessions"`
	// Requests counts protocol requests handled, hello and stats included.
	Requests int64 `json:"requests"`
	// Estimates counts transfers estimated: estimate requests, batch
	// items, and the internal estimate behind each occupy.
	Estimates int64 `json:"estimates"`
	// Simulated counts engine episodes actually run; a fully cache-served
	// session reports 0.
	Simulated int64 `json:"simulated"`
	// CacheHits counts estimate/batch/occupy answers served from the
	// response cache without simulating.
	CacheHits int64 `json:"cache_hits"`
	// CacheSize is the response cache's current distinct-key count.
	CacheSize int `json:"cache_size"`
	// Engines counts warm engines resident in the pool.
	Engines int `json:"engines"`
	// Occupies counts occupy grants issued.
	Occupies int64 `json:"occupies"`
}

// Response is one protocol response line. Exactly one payload pointer is
// set on success, matching the op; on failure OK is false and Error names
// the problem while the session stays usable.
type Response struct {
	Op string `json:"op"`
	ID int64  `json:"id,omitempty"`
	OK bool   `json:"ok"`
	// Error describes a failed request (OK false).
	Error string `json:"error,omitempty"`

	// Protocol/Engine/FlitBytes/Network answer hello: the negotiated
	// protocol version, the simulator-core generation (cache provenance),
	// the session's flit width, and the engine's network summary.
	Protocol  int                  `json:"protocol,omitempty"`
	Engine    string               `json:"engine,omitempty"`
	FlitBytes int                  `json:"flit_bytes,omitempty"`
	Network   *slimnoc.NetworkInfo `json:"network,omitempty"`

	// Result answers estimate.
	Result *slimnoc.EstimateResult `json:"result,omitempty"`
	// Results answers batch, in request order.
	Results []slimnoc.EstimateResult `json:"results,omitempty"`
	// Grant answers occupy.
	Grant *Grant `json:"grant,omitempty"`
	// Window answers window.
	Window *WindowInfo `json:"window,omitempty"`
	// Stats answers stats.
	Stats *Stats `json:"stats,omitempty"`
}

// FlitsFor converts a wire transfer's size to flits: an explicit flit count
// wins, else bytes are divided by the session's flit width (rounded up,
// minimum one flit).
func FlitsFor(t WireTransfer, flitBytes int) (int, error) {
	if t.Flits < 0 || t.Bytes < 0 {
		return 0, fmt.Errorf("serve: negative transfer size (flits %d, bytes %d)", t.Flits, t.Bytes)
	}
	if t.Flits > 0 {
		return t.Flits, nil
	}
	if t.Bytes == 0 {
		return 0, fmt.Errorf("serve: transfer %d -> %d has neither bytes nor flits", t.Src, t.Dst)
	}
	if flitBytes <= 0 {
		flitBytes = DefaultFlitBytes
	}
	flits := int((t.Bytes + int64(flitBytes) - 1) / int64(flitBytes))
	if flits < 1 {
		flits = 1
	}
	return flits, nil
}
