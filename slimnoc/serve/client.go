package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/slimnoc"
)

// DefaultWindow is the client's default bound on in-flight requests.
const DefaultWindow = 32

// Client speaks the JSON-line protocol to a serve.Server over any
// stream transport. It pipelines: up to a configurable window of requests
// may be in flight at once, submitted from any number of goroutines, with
// responses matched back to callers in protocol order (the server answers
// strictly in request order). When the window is full, submission blocks —
// server-side backpressure (queued engine activations) propagates to the
// caller instead of growing an unbounded queue.
type Client struct {
	rwc io.ReadWriteCloser

	network   slimnoc.NetworkInfo
	engine    string
	flitBytes int

	// wmu serializes writes and pending-queue appends so the FIFO order of
	// pending always matches the wire order of requests.
	wmu     sync.Mutex
	w       *bufio.Writer
	nextID  int64
	pending chan *call
	window  chan struct{}

	closeOnce sync.Once
	readerErr error
	done      chan struct{}
}

// call is one in-flight request awaiting its response line.
type call struct {
	id   int64
	resp Response
	err  error
	done chan struct{}
}

// ClientOption configures a Client.
type ClientOption func(*clientConfig)

type clientConfig struct {
	flitBytes int
	window    int
}

// WithFlitBytes negotiates a session flit width (bytes per flit) in hello.
func WithFlitBytes(n int) ClientOption {
	return func(c *clientConfig) { c.flitBytes = n }
}

// WithWindow bounds the client's in-flight request window
// (default DefaultWindow).
func WithWindow(n int) ClientOption {
	return func(c *clientConfig) {
		if n > 0 {
			c.window = n
		}
	}
}

// Dial connects to a snserve TCP endpoint and opens a session for spec.
func Dial(ctx context.Context, addr string, spec slimnoc.RunSpec, opts ...ClientOption) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c, err := NewClient(conn, spec, opts...)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient opens a session over an existing transport (a TCP connection, a
// subprocess's stdin/stdout pair, an in-process pipe): it performs the
// hello handshake synchronously and returns a ready client. The client
// owns rwc and closes it on Close.
func NewClient(rwc io.ReadWriteCloser, spec slimnoc.RunSpec, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{window: DefaultWindow}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Client{
		rwc:     rwc,
		w:       bufio.NewWriter(rwc),
		pending: make(chan *call, cfg.window),
		window:  make(chan struct{}, cfg.window),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	resp, err := c.roundTrip(Request{
		Op:        OpHello,
		Version:   ProtocolVersion,
		FlitBytes: cfg.flitBytes,
		Spec:      &spec,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	if resp.Network == nil {
		c.Close()
		return nil, errors.New("serve: hello response missing network info")
	}
	c.network = *resp.Network
	c.engine = resp.Engine
	c.flitBytes = resp.FlitBytes
	return c, nil
}

// readLoop matches response lines to pending calls in FIFO order.
func (c *Client) readLoop() {
	sc := bufio.NewScanner(c.rwc)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var resp Response
		err := json.Unmarshal(line, &resp)
		select {
		case call := <-c.pending:
			if err != nil {
				call.err = fmt.Errorf("serve: malformed response line: %w", err)
			} else if resp.ID != call.id {
				call.err = fmt.Errorf("serve: response id %d does not match request id %d", resp.ID, call.id)
			} else {
				call.resp = resp
			}
			close(call.done)
			<-c.window
		default:
			// A response with no pending request means the stream
			// desynchronized; abandon the session.
			c.failPending(errors.New("serve: unsolicited response line"))
			return
		}
	}
	err := sc.Err()
	if err == nil {
		err = io.EOF
	}
	c.failPending(fmt.Errorf("serve: connection lost: %w", err))
}

// failPending wakes every queued caller with err and marks the client dead.
func (c *Client) failPending(err error) {
	c.readerErr = err
	close(c.done)
	for {
		select {
		case call := <-c.pending:
			call.err = err
			close(call.done)
		default:
			return
		}
	}
}

// send writes one request line and registers its call, respecting the
// in-flight window.
func (c *Client) send(req Request) (*call, error) {
	select {
	case c.window <- struct{}{}:
	case <-c.done:
		return nil, c.readerErr
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	select {
	case <-c.done:
		<-c.window
		return nil, c.readerErr
	default:
	}
	c.nextID++
	req.ID = c.nextID
	cl := &call{id: req.ID, done: make(chan struct{})}
	out, err := json.Marshal(req)
	if err != nil {
		<-c.window
		return nil, err
	}
	// Registering before writing keeps the pending FIFO aligned with the
	// wire even if the reader races ahead.
	c.pending <- cl
	c.w.Write(out)
	c.w.WriteByte('\n')
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("serve: write request: %w", err)
	}
	return cl, nil
}

// roundTrip submits one request and waits for its response, surfacing
// protocol-level errors (OK false) as Go errors.
func (c *Client) roundTrip(req Request) (Response, error) {
	cl, err := c.send(req)
	if err != nil {
		return Response{}, err
	}
	<-cl.done
	if cl.err != nil {
		return Response{}, cl.err
	}
	if !cl.resp.OK {
		return cl.resp, fmt.Errorf("serve: %s failed: %s", req.Op, cl.resp.Error)
	}
	return cl.resp, nil
}

// Network returns the session engine's network summary from hello.
func (c *Client) Network() slimnoc.NetworkInfo { return c.network }

// Engine returns the server's engine version string from hello.
func (c *Client) Engine() string { return c.engine }

// FlitBytes returns the session's negotiated flit width.
func (c *Client) FlitBytes() int { return c.flitBytes }

// Estimate returns the isolated (idle-network) latency of moving bytes
// from src to dst.
func (c *Client) Estimate(src, dst int, bytes int64) (slimnoc.EstimateResult, error) {
	resp, err := c.roundTrip(Request{Op: OpEstimate, Src: &src, Dst: &dst, Bytes: bytes})
	if err != nil {
		return slimnoc.EstimateResult{}, err
	}
	if resp.Result == nil {
		return slimnoc.EstimateResult{}, errors.New("serve: estimate response missing result")
	}
	return *resp.Result, nil
}

// EstimateFlits is Estimate with an explicit flit count.
func (c *Client) EstimateFlits(src, dst, flits int) (slimnoc.EstimateResult, error) {
	resp, err := c.roundTrip(Request{Op: OpEstimate, Src: &src, Dst: &dst, Flits: flits})
	if err != nil {
		return slimnoc.EstimateResult{}, err
	}
	if resp.Result == nil {
		return slimnoc.EstimateResult{}, errors.New("serve: estimate response missing result")
	}
	return *resp.Result, nil
}

// Batch estimates a set of transfers as one contended episode (all
// injected at cycle 0), amortizing one engine activation; results are in
// request order.
func (c *Client) Batch(transfers []WireTransfer) ([]slimnoc.EstimateResult, error) {
	resp, err := c.roundTrip(Request{Op: OpBatch, Transfers: transfers})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(transfers) {
		return nil, fmt.Errorf("serve: batch returned %d results for %d transfers", len(resp.Results), len(transfers))
	}
	return resp.Results, nil
}

// Occupy schedules a transfer on the session timeline no earlier than
// start: the returned grant says when the route was actually free, when the
// transfer finishes, and how long occupancy windows delayed it. The route's
// links are reserved until the grant's finish.
func (c *Client) Occupy(src, dst int, bytes int64, start int64) (Grant, error) {
	resp, err := c.roundTrip(Request{Op: OpOccupy, Src: &src, Dst: &dst, Bytes: bytes, Start: start})
	if err != nil {
		return Grant{}, err
	}
	if resp.Grant == nil {
		return Grant{}, errors.New("serve: occupy response missing grant")
	}
	return *resp.Grant, nil
}

// OccupyFlits is Occupy with an explicit flit count.
func (c *Client) OccupyFlits(src, dst, flits int, start int64) (Grant, error) {
	resp, err := c.roundTrip(Request{Op: OpOccupy, Src: &src, Dst: &dst, Flits: flits, Start: start})
	if err != nil {
		return Grant{}, err
	}
	if resp.Grant == nil {
		return Grant{}, errors.New("serve: occupy response missing grant")
	}
	return *resp.Grant, nil
}

// Window reports the session's occupancy state.
func (c *Client) Window() (WindowInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpWindow})
	if err != nil {
		return WindowInfo{}, err
	}
	if resp.Window == nil {
		return WindowInfo{}, errors.New("serve: window response missing window info")
	}
	return *resp.Window, nil
}

// RouteWindow reports occupancy plus the earliest free cycle of the
// src→dst route.
func (c *Client) RouteWindow(src, dst int) (WindowInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpWindow, Src: &src, Dst: &dst})
	if err != nil {
		return WindowInfo{}, err
	}
	if resp.Window == nil {
		return WindowInfo{}, errors.New("serve: window response missing window info")
	}
	return *resp.Window, nil
}

// ResetWindows clears the session's occupancy windows.
func (c *Client) ResetWindows() error {
	_, err := c.roundTrip(Request{Op: OpWindow, Reset: true})
	return err
}

// Stats fetches the server's deterministic service counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("serve: stats response missing stats")
	}
	return *resp.Stats, nil
}

// Shutdown asks the server to stop after answering; the session is done
// afterwards (Close still releases the transport).
func (c *Client) Shutdown() error {
	_, err := c.roundTrip(Request{Op: OpShutdown})
	return err
}

// Close releases the transport. In-flight calls fail with a connection
// error. Safe to call more than once.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.rwc.Close() })
	return err
}
