package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"

	"repro/slimnoc"
	"repro/slimnoc/store"
)

// ErrShutdown is returned by ServeConn when the session issued the
// shutdown verb: the response has already been written and the server
// should stop accepting new sessions.
var ErrShutdown = errors.New("serve: shutdown requested")

// maxLineBytes bounds one protocol line (requests and responses); a batch
// of tens of thousands of transfers fits comfortably.
const maxLineBytes = 16 << 20

// DefaultMaxBatch bounds the transfer count of one batch request.
const DefaultMaxBatch = 4096

// Server is the co-simulation latency oracle: it speaks the JSON-line
// protocol over any line-oriented transport (stdin/stdout, a TCP
// connection), multiplexes sessions over a shared engine Pool, and serves
// repeated estimates from a store-backed response Cache without
// simulating. A Server is safe for concurrent sessions; per-session state
// (negotiated engine, flit width, occupancy windows) lives in the session,
// so sessions never interfere except by sharing warm engines and the
// cache — both read-mostly by design.
type Server struct {
	pool     *Pool
	cache    *Cache
	maxBatch int

	sessions  atomic.Int64
	requests  atomic.Int64
	estimates atomic.Int64
	simulated atomic.Int64
	occupies  atomic.Int64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithPool supplies a shared engine pool (several servers may share one).
// The default is a fresh NewPool(0).
func WithPool(p *Pool) ServerOption {
	return func(s *Server) { s.pool = p }
}

// WithCache attaches a store-backed response cache; without one every
// estimate simulates.
func WithCache(c *Cache) ServerOption {
	return func(s *Server) { s.cache = c }
}

// WithMaxBatch overrides the per-request transfer bound
// (default DefaultMaxBatch).
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// NewServer builds a server.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{maxBatch: DefaultMaxBatch}
	for _, o := range opts {
		o(s)
	}
	if s.pool == nil {
		s.pool = NewPool(0)
	}
	return s
}

// Stats snapshots the deterministic service counters.
func (s *Server) Stats() Stats {
	return Stats{
		Sessions:  s.sessions.Load(),
		Requests:  s.requests.Load(),
		Estimates: s.estimates.Load(),
		Simulated: s.simulated.Load(),
		CacheHits: s.cache.Hits(),
		CacheSize: s.cache.Len(),
		Engines:   s.pool.Engines(),
		Occupies:  s.occupies.Load(),
	}
}

// session is the per-connection protocol state.
type session struct {
	srv       *Server
	est       *slimnoc.Estimator
	flitBytes int
	windows   windowSet
}

// ServeConn runs one protocol session over rw: one JSON request per line
// in, one JSON response per line out, in order. It returns nil when the
// peer closes the stream, ErrShutdown when the session asked the server to
// stop, and the transport error otherwise. Cancelling ctx aborts in-flight
// engine acquisition; the transport itself is the caller's to close.
func (s *Server) ServeConn(ctx context.Context, rw io.ReadWriter) error {
	sess := &session{srv: s, flitBytes: DefaultFlitBytes}
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	w := bufio.NewWriter(rw)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{Op: "error"}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("serve: malformed request line: %v", err)
		} else {
			resp = sess.handle(ctx, req)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			// A response that cannot marshal is a server bug; surface it as
			// a protocol-level error line rather than silently skipping the
			// response and desynchronizing the stream.
			out, _ = json.Marshal(Response{Op: req.Op, ID: req.ID, Error: fmt.Sprintf("serve: marshal response: %v", err)})
		}
		w.Write(out)
		w.WriteByte('\n')
		if err := w.Flush(); err != nil {
			return fmt.Errorf("serve: write response: %w", err)
		}
		if req.Op == OpShutdown && resp.OK {
			return ErrShutdown
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("serve: read request: %w", err)
	}
	return nil
}

// Serve accepts sessions on ln until ctx ends or a session requests
// shutdown; each session runs in its own goroutine. The listener is closed
// on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			if err := s.ServeConn(ctx, conn); errors.Is(err, ErrShutdown) {
				cancel()
			}
		}()
	}
}

// ListenAndServe listens on addr (TCP) and serves until ctx ends or a
// session requests shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// handle dispatches one request. Every path returns a response; failures
// set Error and leave the session usable.
func (sess *session) handle(ctx context.Context, req Request) Response {
	sess.srv.requests.Add(1)
	resp := Response{Op: req.Op, ID: req.ID}
	fail := func(format string, args ...any) Response {
		resp.Error = fmt.Sprintf(format, args...)
		return resp
	}
	switch req.Op {
	case OpHello:
		if req.Version != 0 && req.Version != ProtocolVersion {
			return fail("serve: protocol version %d unsupported (server speaks %d)", req.Version, ProtocolVersion)
		}
		if req.Spec == nil {
			return fail("serve: hello needs a spec")
		}
		if req.FlitBytes < 0 {
			return fail("serve: flit_bytes = %d, want >= 0", req.FlitBytes)
		}
		est, err := sess.srv.pool.Engine(*req.Spec)
		if err != nil {
			return fail("%v", err)
		}
		sess.est = est
		if req.FlitBytes > 0 {
			sess.flitBytes = req.FlitBytes
		}
		sess.windows.reset()
		sess.srv.sessions.Add(1)
		info := est.Network()
		resp.OK = true
		resp.Protocol = ProtocolVersion
		resp.Engine = slimnoc.EngineVersion
		resp.FlitBytes = sess.flitBytes
		resp.Network = &info
		return resp

	case OpEstimate:
		tr, err := sess.oneTransfer(req)
		if err != nil {
			return fail("%v", err)
		}
		results, err := sess.estimate(ctx, []slimnoc.Transfer{tr})
		if err != nil {
			return fail("%v", err)
		}
		resp.OK = true
		resp.Result = &results[0]
		return resp

	case OpBatch:
		if sess.est == nil {
			return fail("serve: hello required before %s", req.Op)
		}
		if len(req.Transfers) == 0 {
			return fail("serve: empty batch")
		}
		if len(req.Transfers) > sess.srv.maxBatch {
			return fail("serve: batch of %d transfers exceeds the server bound %d", len(req.Transfers), sess.srv.maxBatch)
		}
		transfers := make([]slimnoc.Transfer, len(req.Transfers))
		for i, wt := range req.Transfers {
			flits, err := FlitsFor(wt, sess.flitBytes)
			if err != nil {
				return fail("%v", err)
			}
			transfers[i] = slimnoc.Transfer{Src: wt.Src, Dst: wt.Dst, Flits: flits}
		}
		results, err := sess.estimate(ctx, transfers)
		if err != nil {
			return fail("%v", err)
		}
		resp.OK = true
		resp.Results = results
		return resp

	case OpOccupy:
		tr, err := sess.oneTransfer(req)
		if err != nil {
			return fail("%v", err)
		}
		if req.Start < 0 {
			return fail("serve: occupy start = %d, want >= 0", req.Start)
		}
		results, err := sess.estimate(ctx, []slimnoc.Transfer{tr})
		if err != nil {
			return fail("%v", err)
		}
		path, err := sess.est.RouterPath(tr.Src, tr.Dst)
		if err != nil {
			return fail("%v", err)
		}
		start := sess.windows.freeAt(path, req.Start)
		finish := start + results[0].LatencyCycles
		sess.windows.reserve(path, finish)
		sess.srv.occupies.Add(1)
		resp.OK = true
		resp.Grant = &Grant{
			Requested:     req.Start,
			Start:         start,
			Finish:        finish,
			LatencyCycles: results[0].LatencyCycles,
			Waited:        start - req.Start,
			Hops:          results[0].Hops,
		}
		return resp

	case OpWindow:
		if sess.est == nil {
			return fail("serve: hello required before %s", req.Op)
		}
		if req.Reset {
			sess.windows.reset()
		}
		win := WindowInfo{Horizon: sess.windows.horizon, BusyLinks: sess.windows.busyLinks()}
		if req.Src != nil || req.Dst != nil {
			if req.Src == nil || req.Dst == nil {
				return fail("serve: window route query needs both src and dst")
			}
			path, err := sess.est.RouterPath(*req.Src, *req.Dst)
			if err != nil {
				return fail("%v", err)
			}
			freeAt := sess.windows.freeAt(path, 0)
			win.FreeAt = &freeAt
		}
		resp.OK = true
		resp.Window = &win
		return resp

	case OpStats:
		st := sess.srv.Stats()
		resp.OK = true
		resp.Stats = &st
		return resp

	case OpShutdown:
		resp.OK = true
		return resp

	default:
		return fail("serve: unknown op %q", req.Op)
	}
}

// oneTransfer resolves the single-transfer fields of an estimate or occupy
// request against the session.
func (sess *session) oneTransfer(req Request) (slimnoc.Transfer, error) {
	if sess.est == nil {
		return slimnoc.Transfer{}, fmt.Errorf("serve: hello required before %s", req.Op)
	}
	if req.Src == nil || req.Dst == nil {
		return slimnoc.Transfer{}, fmt.Errorf("serve: %s needs src and dst", req.Op)
	}
	flits, err := FlitsFor(WireTransfer{Src: *req.Src, Dst: *req.Dst, Bytes: req.Bytes, Flits: req.Flits}, sess.flitBytes)
	if err != nil {
		return slimnoc.Transfer{}, err
	}
	return slimnoc.Transfer{Src: *req.Src, Dst: *req.Dst, Flits: flits}, nil
}

// estimate answers one episode through the cache: a hit is served without
// touching the engine, a miss acquires an activation slot, simulates, and
// persists the results before returning them.
func (sess *session) estimate(ctx context.Context, transfers []slimnoc.Transfer) ([]slimnoc.EstimateResult, error) {
	srv := sess.srv
	srv.estimates.Add(int64(len(transfers)))
	var key store.Key
	cached := false
	if srv.cache != nil {
		k, err := srv.cache.Key(sess.est.Spec(), transfers)
		if err != nil {
			return nil, err
		}
		key, cached = k, true
		if results, ok := srv.cache.Get(k); ok && len(results) == len(transfers) {
			return results, nil
		}
	}
	if err := srv.pool.Acquire(ctx); err != nil {
		return nil, err
	}
	results, err := sess.est.Estimate(transfers)
	srv.pool.Release()
	if err != nil {
		return nil, err
	}
	srv.simulated.Add(1)
	if cached {
		if err := srv.cache.Put(key, results); err != nil {
			// The estimate itself succeeded; a durability failure must
			// surface, or a "cached" service would silently recompute
			// forever (mirroring the campaign store contract).
			return nil, fmt.Errorf("serve: response cache: %w", err)
		}
	}
	return results, nil
}
