package serve

// Per-session link-occupancy windows, the uPIMulator-style coupling: the
// host asks for a transfer's latency, the service reserves the transfer's
// route links for [start, start+latency), and a later transfer sharing any
// of those links is pushed past the window — so concurrent in-flight
// transfers create backpressure on the host's timeline without the host
// understanding the topology.
//
// The model is deliberately conservative: a transfer occupies every link
// of its route for its whole duration (no pipelining credit), matching the
// occupancy-window scheme of the uPIMulator x BookSim2 report in
// SNIPPETS.md. Windows are session-local — each client session owns its
// timeline — and never feed back into the engine, which always estimates
// on an idle network; contention within one engine episode is what batch
// is for.

// linkKey identifies one directed router-to-router link.
type linkKey struct{ a, b int32 }

// windowSet tracks busy-until cycles per directed link for one session.
// The zero value is ready to use. Not safe for concurrent use: the session
// loop is single-goroutine by protocol design (requests answer in order).
type windowSet struct {
	busy    map[linkKey]int64
	horizon int64
}

// freeAt returns the earliest cycle >= at when every link along the router
// path is free. Paths shorter than two routers occupy no links.
func (w *windowSet) freeAt(path []int, at int64) int64 {
	if w.busy == nil {
		return at
	}
	for i := 0; i+1 < len(path); i++ {
		k := linkKey{int32(path[i]), int32(path[i+1])}
		if until, ok := w.busy[k]; ok && until > at {
			at = until
		}
	}
	return at
}

// reserve marks every link along the path busy until finish.
func (w *windowSet) reserve(path []int, finish int64) {
	if len(path) < 2 {
		if finish > w.horizon {
			w.horizon = finish
		}
		return
	}
	if w.busy == nil {
		w.busy = make(map[linkKey]int64)
	}
	for i := 0; i+1 < len(path); i++ {
		k := linkKey{int32(path[i]), int32(path[i+1])}
		if finish > w.busy[k] {
			w.busy[k] = finish
		}
	}
	if finish > w.horizon {
		w.horizon = finish
	}
}

// busyLinks counts links with an active window (any recorded busy-until;
// windows are not garbage-collected against a current time because the
// session timeline is the client's to define).
func (w *windowSet) busyLinks() int { return len(w.busy) }

// reset clears all windows and the horizon.
func (w *windowSet) reset() {
	w.busy = nil
	w.horizon = 0
}
