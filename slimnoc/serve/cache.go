package serve

import (
	"encoding/json"
	"sync/atomic"

	"repro/slimnoc"
	"repro/slimnoc/store"
)

// cacheSchema versions the cached record shape (the []EstimateResult
// JSON) and the key identity below. Bump it when either changes
// incompatibly; the engine component of the salt moves with
// sim.EngineVersion automatically, so results computed by one engine
// generation are never served to another — the same salting discipline as
// slimnoc.PointKey.
const cacheSchema = "slimnoc.serve.EstimateBatch/v1"

// cacheSalt partitions the store key space for serve responses.
const cacheSalt = cacheSchema + "|engine=" + slimnoc.EngineVersion

// cacheIdentity is the canonical identity of one estimate episode: the
// engine's canonical spec plus the exact transfer batch. Batches are
// order-sensitive by design — transfers in one episode contend, so a
// reordered batch is a different (if usually equal-valued) computation.
type cacheIdentity struct {
	Spec      slimnoc.RunSpec    `json:"spec"`
	Transfers []slimnoc.Transfer `json:"transfers"`
}

// Cache is the store-backed response cache: estimate episodes keyed by
// content address, so a repeated query — same engine, same batch — is
// served without simulating, across sessions and across server restarts
// (the store file persists). A nil *Cache is valid and caches nothing.
//
// Concurrency: the underlying store.Store serializes access internally and
// the serve workload is read-mostly (every repeat is a Get), the access
// pattern the store's concurrency contract is tested under.
type Cache struct {
	st   *store.Store
	hits atomic.Int64
}

// NewCache wraps an open store as a response cache. The store may be
// shared with other users (keys are salted); the caller keeps ownership
// and closes it.
func NewCache(st *store.Store) *Cache { return &Cache{st: st} }

// Key computes the content address of an episode under the estimator's
// canonical spec. spec must already be canonical (Estimator.Spec returns
// the right form); transfers must carry resolved flit counts.
func (c *Cache) Key(spec slimnoc.RunSpec, transfers []slimnoc.Transfer) (store.Key, error) {
	return store.KeyOf(cacheSalt, cacheIdentity{Spec: spec, Transfers: transfers})
}

// Get returns the cached episode results for key, if present and
// decodable. Undecodable records (schema drift) are treated as misses and
// later superseded by Put.
func (c *Cache) Get(key store.Key) ([]slimnoc.EstimateResult, bool) {
	if c == nil || c.st == nil {
		return nil, false
	}
	raw, ok := c.st.Get(key)
	if !ok {
		return nil, false
	}
	var results []slimnoc.EstimateResult
	if err := json.Unmarshal(raw, &results); err != nil {
		return nil, false
	}
	c.hits.Add(1)
	return results, true
}

// Put durably stores an episode's results under key.
func (c *Cache) Put(key store.Key, results []slimnoc.EstimateResult) error {
	if c == nil || c.st == nil {
		return nil
	}
	raw, err := json.Marshal(results)
	if err != nil {
		return err
	}
	return c.st.Put(key, raw)
}

// Len returns the number of records in the backing store (0 when nil).
func (c *Cache) Len() int {
	if c == nil || c.st == nil {
		return 0
	}
	return c.st.Len()
}

// Hits returns how many Get calls were served from the cache.
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}
