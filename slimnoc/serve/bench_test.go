package serve_test

import (
	"path/filepath"
	"testing"

	"repro/slimnoc/serve"
)

// BenchmarkServeEstimate times the full serving path — client, JSON-line
// protocol, session, engine or cache — in its three regimes: cold (every
// query is an engine episode), warm-cache (every query is a store hit), and
// batch (32 transfers amortizing one engine activation). CI renders the
// results into BENCH_serve.json next to BENCH_sim.json.
func BenchmarkServeEstimate(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		srv := serve.NewServer() // no cache: every estimate simulates
		c, err := serve.NewClient(startServer(b, srv), testSpec())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if _, err := c.EstimateFlits(0, 27, 4); err != nil {
			b.Fatal(err) // engine build happens here, outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.EstimateFlits(0, 27, 4); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-cache", func(b *testing.B) {
		srv := serve.NewServer(serve.WithCache(openCache(b, filepath.Join(b.TempDir(), "bench.jsonl"))))
		c, err := serve.NewClient(startServer(b, srv), testSpec())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if _, err := c.EstimateFlits(0, 27, 4); err != nil {
			b.Fatal(err) // populates the cache: the timed loop only hits
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.EstimateFlits(0, 27, 4); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batch-32", func(b *testing.B) {
		srv := serve.NewServer()
		c, err := serve.NewClient(startServer(b, srv), testSpec())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		transfers := make([]serve.WireTransfer, 32)
		for i := range transfers {
			transfers[i] = serve.WireTransfer{Src: (i * 7) % 54, Dst: (i*31 + 5) % 54, Flits: 1 + i%6}
		}
		if _, err := c.Batch(transfers); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Batch(transfers); err != nil {
				b.Fatal(err)
			}
		}
	})
}
