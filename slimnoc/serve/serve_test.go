package serve_test

import (
	"context"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"repro/slimnoc"
	"repro/slimnoc/serve"
	"repro/slimnoc/store"
)

// testSpec is the engine every serve test negotiates: the small-scale 54-node
// torus so estimator builds stay cheap.
func testSpec() slimnoc.RunSpec {
	return slimnoc.RunSpec{Network: slimnoc.NetworkSpec{Preset: "t2d54"}}
}

// startServer runs srv over one end of an in-process pipe and returns the
// client end. The server goroutine exits when the pipe closes or the
// session asks for shutdown.
func startServer(t testing.TB, srv *serve.Server) net.Conn {
	t.Helper()
	sc, cc := net.Pipe()
	go func() {
		defer sc.Close()
		srv.ServeConn(context.Background(), sc)
	}()
	t.Cleanup(func() { cc.Close() })
	return cc
}

func openCache(t testing.TB, path string) *serve.Cache {
	t.Helper()
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return serve.NewCache(st)
}

func TestServeSessionEndToEnd(t *testing.T) {
	srv := serve.NewServer(
		serve.WithCache(openCache(t, filepath.Join(t.TempDir(), "serve.jsonl"))),
		serve.WithPool(serve.NewPool(2)),
	)
	c, err := serve.NewClient(startServer(t, srv), testSpec(), serve.WithFlitBytes(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if c.Engine() != slimnoc.EngineVersion {
		t.Fatalf("engine = %q, want %q", c.Engine(), slimnoc.EngineVersion)
	}
	if c.FlitBytes() != 8 {
		t.Fatalf("flit bytes = %d, want 8", c.FlitBytes())
	}
	if c.Network().Nodes != 54 {
		t.Fatalf("nodes = %d, want 54", c.Network().Nodes)
	}

	// Isolated estimate; the repeat must be served from cache (Simulated
	// stays put) with the identical result.
	r1, err := c.Estimate(0, 27, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1.LatencyCycles <= 0 || r1.Flits != 8 {
		t.Fatalf("estimate = %+v", r1)
	}
	st1, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Estimate(0, 27, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("repeat estimate differs: %+v vs %+v", r1, r2)
	}
	st2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Simulated != st1.Simulated {
		t.Fatalf("repeat estimate simulated (simulated %d -> %d)", st1.Simulated, st2.Simulated)
	}
	if st2.CacheHits != st1.CacheHits+1 {
		t.Fatalf("cache hits %d -> %d, want +1", st1.CacheHits, st2.CacheHits)
	}

	// A contended batch is never faster than the same transfer alone.
	batch, err := c.Batch([]serve.WireTransfer{
		{Src: 0, Dst: 27, Bytes: 64},
		{Src: 1, Dst: 27, Bytes: 64},
		{Src: 2, Dst: 27, Bytes: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch results = %d", len(batch))
	}
	if batch[0].LatencyCycles < r1.LatencyCycles {
		t.Fatalf("contended %d < isolated %d", batch[0].LatencyCycles, r1.LatencyCycles)
	}

	// Occupancy: a second transfer on the same route is pushed past the
	// first one's window.
	g1, err := c.Occupy(0, 27, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Start != 0 || g1.Waited != 0 || g1.Finish != g1.LatencyCycles {
		t.Fatalf("first grant = %+v", g1)
	}
	g2, err := c.Occupy(0, 27, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Start != g1.Finish || g2.Waited != g1.Finish {
		t.Fatalf("second grant not pushed past first: %+v after %+v", g2, g1)
	}

	// Window reflects the reservations; a disjoint route is free now.
	w, err := c.RouteWindow(0, 27)
	if err != nil {
		t.Fatal(err)
	}
	if w.Horizon != g2.Finish || w.BusyLinks == 0 {
		t.Fatalf("window = %+v, want horizon %d and busy links", w, g2.Finish)
	}
	if w.FreeAt == nil || *w.FreeAt != g2.Finish {
		t.Fatalf("route free_at = %v, want %d", w.FreeAt, g2.Finish)
	}
	if err := c.ResetWindows(); err != nil {
		t.Fatal(err)
	}
	w, err = c.Window()
	if err != nil {
		t.Fatal(err)
	}
	if w.Horizon != 0 || w.BusyLinks != 0 {
		t.Fatalf("window after reset = %+v", w)
	}

	// Protocol errors leave the session usable.
	if _, err := c.Estimate(-1, 27, 64); err == nil {
		t.Fatal("out-of-range estimate accepted")
	}
	if _, err := c.Estimate(0, 1, 64); err != nil {
		t.Fatalf("session unusable after error: %v", err)
	}

	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestServeWarmRerunZeroSimulations pins the acceptance criterion: replaying
// a session against a server restarted on the same store serves every
// estimate from cache, with identical results and zero engine episodes.
func TestServeWarmRerunZeroSimulations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.jsonl")
	run := func() ([]slimnoc.EstimateResult, serve.Stats) {
		srv := serve.NewServer(serve.WithCache(openCache(t, path)))
		c, err := serve.NewClient(startServer(t, srv), testSpec())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var results []slimnoc.EstimateResult
		for _, tr := range [][2]int{{0, 53}, {3, 17}, {17, 3}, {5, 5}} {
			r, err := c.EstimateFlits(tr[0], tr[1], 4)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
		batch, err := c.Batch([]serve.WireTransfer{
			{Src: 0, Dst: 27, Flits: 4},
			{Src: 9, Dst: 27, Flits: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, batch...)
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return results, st
	}

	cold, coldStats := run()
	if coldStats.Simulated == 0 {
		t.Fatal("cold run simulated nothing")
	}
	warm, warmStats := run()
	if warmStats.Simulated != 0 {
		t.Fatalf("warm rerun simulated %d episodes, want 0", warmStats.Simulated)
	}
	if len(warm) != len(cold) {
		t.Fatalf("result counts differ: %d vs %d", len(warm), len(cold))
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("result %d differs warm vs cold: %+v vs %+v", i, warm[i], cold[i])
		}
	}
}

// TestServeConcurrentDeterminism pins satellite 3: the same transcript of
// estimates yields identical latencies whether submitted serially or from
// many goroutines pipelining over one session. No cache is attached, so
// every answer is a live engine episode.
func TestServeConcurrentDeterminism(t *testing.T) {
	srv := serve.NewServer(serve.WithPool(serve.NewPool(4)))
	c, err := serve.NewClient(startServer(t, srv), testSpec(), serve.WithWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type q struct{ src, dst, flits int }
	queries := make([]q, 24)
	for i := range queries {
		queries[i] = q{src: (i * 7) % 54, dst: (i*31 + 5) % 54, flits: 1 + i%6}
	}

	serial := make([]slimnoc.EstimateResult, len(queries))
	for i, s := range queries {
		r, err := c.EstimateFlits(s.src, s.dst, s.flits)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}

	concurrent := make([]slimnoc.EstimateResult, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i, s := range queries {
		wg.Add(1)
		go func(i int, s q) {
			defer wg.Done()
			concurrent[i], errs[i] = c.EstimateFlits(s.src, s.dst, s.flits)
		}(i, s)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if serial[i] != concurrent[i] {
			t.Fatalf("query %d: concurrent %+v != serial %+v", i, concurrent[i], serial[i])
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Simulated != int64(2*len(queries)) {
		t.Fatalf("simulated = %d, want %d (no cache attached)", st.Simulated, 2*len(queries))
	}
}

func TestFlitsFor(t *testing.T) {
	cases := []struct {
		tr        serve.WireTransfer
		flitBytes int
		want      int
		wantErr   bool
	}{
		{serve.WireTransfer{Bytes: 64}, 16, 4, false},
		{serve.WireTransfer{Bytes: 65}, 16, 5, false},
		{serve.WireTransfer{Bytes: 1}, 16, 1, false},
		{serve.WireTransfer{Bytes: 64, Flits: 2}, 16, 2, false},
		{serve.WireTransfer{Flits: 7}, 16, 7, false},
		{serve.WireTransfer{Bytes: 64}, 0, 4, false}, // 0 width -> default 16
		{serve.WireTransfer{}, 16, 0, true},
		{serve.WireTransfer{Bytes: -1}, 16, 0, true},
		{serve.WireTransfer{Flits: -1}, 16, 0, true},
	}
	for i, tc := range cases {
		got, err := serve.FlitsFor(tc.tr, tc.flitBytes)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("case %d: FlitsFor(%+v, %d) = %d, %v; want %d, err=%v",
				i, tc.tr, tc.flitBytes, got, err, tc.want, tc.wantErr)
		}
	}
}

func TestServeRequiresHello(t *testing.T) {
	srv := serve.NewServer()
	cc := startServer(t, srv)
	// Speak the protocol manually: an estimate before hello must fail but
	// keep the session alive for a subsequent hello.
	raw := rawSession(t, cc, []string{
		`{"op":"estimate","id":1,"src":0,"dst":1,"flits":1}`,
		`{"op":"hello","id":2,"spec":{"network":{"preset":"t2d54"}}}`,
	})
	if raw[0].OK || raw[0].Error == "" {
		t.Fatalf("pre-hello estimate accepted: %+v", raw[0])
	}
	if !raw[1].OK || raw[1].Protocol != serve.ProtocolVersion {
		t.Fatalf("hello after error failed: %+v", raw[1])
	}
}

func TestServeRejectsWrongProtocolVersion(t *testing.T) {
	srv := serve.NewServer()
	cc := startServer(t, srv)
	raw := rawSession(t, cc, []string{
		`{"op":"hello","id":1,"version":99,"spec":{"network":{"preset":"t2d54"}}}`,
	})
	if raw[0].OK {
		t.Fatalf("version 99 accepted: %+v", raw[0])
	}
}
