package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"

	"repro/slimnoc/serve"
)

// rawSession writes protocol lines verbatim and collects one response per
// request, for tests that speak the wire format directly.
func rawSession(t testing.TB, conn net.Conn, lines []string) []serve.Response {
	t.Helper()
	go func() {
		for _, l := range lines {
			if _, err := conn.Write([]byte(l + "\n")); err != nil {
				return
			}
		}
	}()
	sc := bufio.NewScanner(conn)
	resps := make([]serve.Response, 0, len(lines))
	for range lines {
		if !sc.Scan() {
			t.Fatalf("connection ended after %d of %d responses: %v", len(resps), len(lines), sc.Err())
		}
		var r serve.Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("malformed response %q: %v", sc.Bytes(), err)
		}
		resps = append(resps, r)
	}
	return resps
}

// scriptRW adapts a scripted request stream and a response sink to the
// ServeConn transport.
type scriptRW struct {
	io.Reader
	io.Writer
}

// TestProtocolGolden pins the wire format: the scripted session in
// testdata/protocol_requests.jsonl must produce byte-for-byte the responses
// in testdata/protocol_golden.jsonl. The transcript covers every verb,
// cache-hit repeats, occupancy backpressure, both error shapes, and the
// deterministic stats block. Regenerate after an intentional protocol
// change with:
//
//	UPDATE_PROTOCOL_GOLDEN=1 go test ./slimnoc/serve -run TestProtocolGolden
func TestProtocolGolden(t *testing.T) {
	reqs, err := os.ReadFile(filepath.Join("testdata", "protocol_requests.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(
		serve.WithCache(openCache(t, filepath.Join(t.TempDir(), "golden.jsonl"))),
		serve.WithPool(serve.NewPool(1)),
	)
	var out bytes.Buffer
	err = srv.ServeConn(context.Background(), scriptRW{bytes.NewReader(reqs), &out})
	if err != nil && !errors.Is(err, serve.ErrShutdown) {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "protocol_golden.jsonl")
	if os.Getenv("UPDATE_PROTOCOL_GOLDEN") == "1" {
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, out.Len())
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_PROTOCOL_GOLDEN=1)", err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		gl := bytes.Split(golden, []byte("\n"))
		ol := bytes.Split(out.Bytes(), []byte("\n"))
		for i := 0; i < len(gl) || i < len(ol); i++ {
			var g, o []byte
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(ol) {
				o = ol[i]
			}
			if !bytes.Equal(g, o) {
				t.Fatalf("protocol output diverges from golden at line %d:\n golden: %s\n    got: %s\n(an intentional wire change needs UPDATE_PROTOCOL_GOLDEN=1 and a ProtocolVersion review)", i+1, g, o)
			}
		}
		t.Fatal("protocol output differs from golden")
	}

	// Round-trip check: every golden line must decode into Response and
	// re-encode to the identical bytes, so the pinned fixture stays in sync
	// with the Go types.
	sc := bufio.NewScanner(bytes.NewReader(golden))
	for line := 1; sc.Scan(); line++ {
		var r serve.Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("golden line %d does not decode: %v", line, err)
		}
		re, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, sc.Bytes()) {
			t.Fatalf("golden line %d does not round-trip:\n golden: %s\nre-enc: %s", line, sc.Bytes(), re)
		}
	}
}
