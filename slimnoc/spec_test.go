package slimnoc

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func testSpec() RunSpec {
	spec := RunSpec{
		Name:    "round-trip",
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.1},
		Sim:     SimSpec{WarmupCycles: 500, MeasureCycles: 1500, DrainCycles: 2000, Seed: 7},
	}
	return spec
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := testSpec().Normalized()
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Errorf("round trip changed the spec:\n before %+v\n after  %+v", spec, got)
	}
}

func TestSpecRoundTripReproducesMetrics(t *testing.T) {
	res1, err := Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Serialize the spec the run reports, re-load it, re-run.
	data, err := res1.Spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Metrics.Delivered == 0 {
		t.Fatal("run delivered no packets; golden comparison is vacuous")
	}
	if res1.Metrics != res2.Metrics {
		t.Errorf("reloaded spec did not reproduce metrics:\n first  %+v\n second %+v",
			res1.Metrics, res2.Metrics)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"network": {"preset": "t2d54"}, "speling": 1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	if _, err := ParseSpec([]byte(`{"network": {"preset": "t2d54", "topolgy": "sn"}}`)); err == nil {
		t.Error("unknown network field accepted")
	}
}

func TestValidate(t *testing.T) {
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*RunSpec)
		want string
	}{
		{"no network", func(s *RunSpec) { s.Network = NetworkSpec{} }, "network"},
		{"bad preset", func(s *RunSpec) { s.Network = NetworkSpec{Preset: "nope"} }, "preset"},
		{"bad topology", func(s *RunSpec) { s.Network = NetworkSpec{Topology: "hypercube"} }, "topology"},
		{"bad routing", func(s *RunSpec) { s.Routing.Algorithm = "magic" }, "routing"},
		{"bad scheme", func(s *RunSpec) { s.Buffering.Scheme = "infinite" }, "scheme"},
		{"bad pattern", func(s *RunSpec) { s.Traffic.Pattern = "xxx" }, "pattern"},
	}
	for _, c := range cases {
		s := testSpec()
		c.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestNormalizedDefaults(t *testing.T) {
	s := RunSpec{Network: NetworkSpec{Preset: "T2D54"}, Traffic: TrafficSpec{Trace: "fft"}}.Normalized()
	if s.Routing.Algorithm != "auto" || s.Routing.VCs != 2 {
		t.Errorf("routing defaults: %+v", s.Routing)
	}
	if s.Buffering.Scheme != "eb" {
		t.Errorf("buffering default: %+v", s.Buffering)
	}
	if s.Traffic.Pattern != "trace" {
		t.Errorf("trace spec should default pattern to trace, got %q", s.Traffic.Pattern)
	}
	if s.Traffic.PacketFlits != 6 {
		t.Errorf("packet flits default: %d", s.Traffic.PacketFlits)
	}
	if s.Network.Preset != "t2d54" {
		t.Errorf("preset not lowercased: %q", s.Network.Preset)
	}
}

func TestHopsPerCycle(t *testing.T) {
	if h := (RunSpec{}).HopsPerCycle(); h != 1 {
		t.Errorf("base H = %d, want 1", h)
	}
	if h := (RunSpec{SMART: true}).HopsPerCycle(); h != 9 {
		t.Errorf("SMART H = %d, want 9", h)
	}
	if h := (RunSpec{SMART: true, HopFactor: 4}).HopsPerCycle(); h != 4 {
		t.Errorf("explicit H = %d, want 4", h)
	}
}
