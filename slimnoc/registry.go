package slimnoc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// registry is a string-keyed, registration-ordered table. Keys are
// case-insensitive.
type registry[T any] struct {
	mu      sync.RWMutex
	entries map[string]T
	order   []string
}

func (r *registry[T]) register(name string, v T) {
	name = strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = make(map[string]T)
	}
	if _, dup := r.entries[name]; !dup {
		r.order = append(r.order, name)
	}
	r.entries[name] = v
}

func (r *registry[T]) lookup(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.entries[strings.ToLower(name)]
	return v, ok
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// TopologyBuilder constructs a placed network and its routing kind from a
// NetworkSpec whose Topology field named this builder.
type TopologyBuilder func(ns NetworkSpec) (*topo.Network, routing.Kind, error)

// TopologyEntry is one registered topology family.
type TopologyEntry struct {
	Build TopologyBuilder
	// Section cites where the paper introduces or evaluates the family.
	Section string
	// Example is a minimal valid NetworkSpec, used by completeness tests
	// and documentation.
	Example NetworkSpec
}

// RoutingFactory builds the path builder and (optionally) the adaptive
// policy for a network.
type RoutingFactory func(net *topo.Network, kind routing.Kind, vcs int) (routing.PathBuilder, sim.AdaptivePolicy, error)

// RoutingEntry is one registered routing algorithm.
type RoutingEntry struct {
	New     RoutingFactory
	Section string
	// Adaptive marks algorithms that route per packet from live network
	// state. Static algorithms compile to an immutable routing.RouteTable
	// that campaigns share across every point with the same
	// (network, algorithm, VCs) combination; adaptive ones cannot.
	Adaptive bool
}

// TrafficFactory builds a traffic source for a placed network.
type TrafficFactory func(net *topo.Network, ts TrafficSpec) (sim.Source, error)

// TrafficEntry is one registered traffic generator.
type TrafficEntry struct {
	New     TrafficFactory
	Section string
	// Example is a runnable TrafficSpec for this entry.
	Example TrafficSpec
}

// ProcessEntry is one registered temporal injection process — the second
// axis of the Pattern x Process x Sizer workload decomposition. Open-loop
// processes compose with any synthetic pattern and sizer via New;
// closed-loop ones (reqreply) replace the whole source.
type ProcessEntry struct {
	// New builds the process for n nodes from a resolved TrafficSpec.
	// Nil for closed-loop entries.
	New func(n int, ts TrafficSpec) (traffic.Process, error)
	// ClosedLoop marks processes that build a self-throttling source
	// instead of composing with the open-loop Synthetic generator; the
	// traffic factories special-case them.
	ClosedLoop bool
	// Section cites the paper or related-work motivation.
	Section string
	// Example is a runnable TrafficSpec for this entry.
	Example TrafficSpec
}

// SchemeConfig is a resolved buffer organisation: the simulator scheme, the
// per-VC edge-buffer sizing function (nil = simulator default), and the
// central-buffer capacity.
type SchemeConfig struct {
	Scheme sim.BufferScheme
	BufCap func(dist int) int
	CBCap  int
}

// SchemeFactory resolves a BufferingSpec given the effective SMART hop
// factor and VC count.
type SchemeFactory func(b BufferingSpec, h, vcs int) (SchemeConfig, error)

// SchemeEntry is one registered buffering strategy.
type SchemeEntry struct {
	New     SchemeFactory
	Section string
}

// LayoutEntry is one registered Slim NoC physical layout.
type LayoutEntry struct {
	Layout  core.Layout
	Section string
}

var (
	topologies registry[TopologyEntry]
	routings   registry[RoutingEntry]
	traffics   registry[TrafficEntry]
	processes  registry[ProcessEntry]
	schemes    registry[SchemeEntry]
	layouts    registry[LayoutEntry]
)

// RegisterTopology adds (or replaces) a topology family. Registering lets
// NetworkSpec.Topology and spec files refer to the family by name without
// any caller changes.
func RegisterTopology(name string, e TopologyEntry) { topologies.register(name, e) }

// RegisterRouting adds (or replaces) a routing algorithm.
func RegisterRouting(name string, e RoutingEntry) { routings.register(name, e) }

// RegisterTraffic adds (or replaces) a traffic generator.
func RegisterTraffic(name string, e TrafficEntry) { traffics.register(name, e) }

// RegisterProcess adds (or replaces) a temporal injection process.
func RegisterProcess(name string, e ProcessEntry) { processes.register(name, e) }

// RegisterScheme adds (or replaces) a buffering strategy.
func RegisterScheme(name string, e SchemeEntry) { schemes.register(name, e) }

// RegisterLayout adds (or replaces) a Slim NoC layout.
func RegisterLayout(name string, e LayoutEntry) { layouts.register(name, e) }

// Topologies lists registered topology names (sorted).
func Topologies() []string { return topologies.names() }

// Routings lists registered routing algorithm names (sorted).
func Routings() []string { return routings.names() }

// Traffics lists registered traffic generator names (sorted).
func Traffics() []string { return traffics.names() }

// Processes lists registered temporal-process names (sorted).
func Processes() []string { return processes.names() }

// Schemes lists registered buffering strategy names (sorted).
func Schemes() []string { return schemes.names() }

// Layouts lists registered Slim NoC layout names (sorted).
func Layouts() []string { return layouts.names() }

// TopologyByName returns a registered topology entry.
func TopologyByName(name string) (TopologyEntry, bool) { return topologies.lookup(name) }

// TrafficByName returns a registered traffic entry.
func TrafficByName(name string) (TrafficEntry, bool) { return traffics.lookup(name) }

// ProcessByName returns a registered process entry.
func ProcessByName(name string) (ProcessEntry, bool) { return processes.lookup(name) }

// hasOverrides reports whether any explicit parameter accompanies the
// spec's preset name.
func (ns NetworkSpec) hasOverrides() bool {
	return ns.Topology != "" || ns.X != 0 || ns.Y != 0 || ns.Conc != 0 ||
		ns.PartsX != 0 || ns.PartsY != 0 || ns.Q != 0 || ns.Nodes != 0 ||
		ns.Layout != "" || ns.LayoutSeed != 0 || len(ns.Extra) > 0
}

// ExpandNetwork resolves a NetworkSpec to explicit parameters: a preset is
// expanded first with any explicitly set fields overriding it, and a Slim
// NoC given only a node count gets its q and concentration resolved via
// Table 2.
func ExpandNetwork(ns NetworkSpec) (NetworkSpec, error) {
	if ns.Preset != "" {
		expanded, err := ResolvePreset(ns.Preset)
		if err != nil {
			return NetworkSpec{}, err
		}
		if ns.Topology != "" {
			expanded.Topology = ns.Topology
		}
		if ns.X != 0 {
			expanded.X = ns.X
		}
		if ns.Y != 0 {
			expanded.Y = ns.Y
		}
		if ns.Conc != 0 {
			expanded.Conc = ns.Conc
		}
		if ns.PartsX != 0 {
			expanded.PartsX = ns.PartsX
		}
		if ns.PartsY != 0 {
			expanded.PartsY = ns.PartsY
		}
		if ns.Q != 0 {
			expanded.Q, expanded.Nodes = ns.Q, 0
		}
		if ns.Nodes != 0 {
			expanded.Nodes = ns.Nodes
		}
		if ns.Layout != "" {
			expanded.Layout = ns.Layout
		}
		if ns.LayoutSeed != 0 {
			expanded.LayoutSeed = ns.LayoutSeed
		}
		if len(ns.Extra) > 0 {
			expanded.Extra = ns.Extra
		}
		ns = expanded
	}
	if ns.Topology == "sn" {
		if ns.Q == 0 && ns.Nodes > 0 {
			params, err := core.FromNetworkSize(ns.Nodes)
			if err != nil {
				return NetworkSpec{}, err
			}
			ns.Q = params.Q
			if ns.Conc == 0 {
				ns.Conc = params.P
			}
		}
		if ns.Layout == "" {
			ns.Layout = "subgr"
		}
	}
	return ns, nil
}

// BuildNetwork constructs the placed network and routing kind described by
// a NetworkSpec, expanding its preset (with explicit fields as overrides)
// first if one is named.
func BuildNetwork(ns NetworkSpec) (*topo.Network, routing.Kind, error) {
	name := strings.ToLower(ns.Preset)
	pristine := name != "" && !ns.hasOverrides()
	ns, err := ExpandNetwork(ns)
	if err != nil {
		return nil, routing.Kind{}, err
	}
	if ns.Topology == "" {
		return nil, routing.Kind{}, fmt.Errorf("slimnoc: network spec names no topology")
	}
	e, ok := topologies.lookup(ns.Topology)
	if !ok {
		return nil, routing.Kind{}, fmt.Errorf("slimnoc: unknown topology %q (have %s)",
			ns.Topology, strings.Join(Topologies(), ", "))
	}
	net, kind, err := e.Build(ns)
	if err != nil {
		return nil, routing.Kind{}, err
	}
	if pristine {
		net.Name = name
	} else if net.Name == "" {
		net.Name = ns.Topology
	}
	return net, kind, nil
}

func needGrid(ns NetworkSpec) error {
	if ns.X <= 0 || ns.Y <= 0 || ns.Conc <= 0 {
		return fmt.Errorf("slimnoc: topology %q needs x, y and conc", ns.Topology)
	}
	return nil
}

func extraParam(ns NetworkSpec, key string) (int, error) {
	v, ok := ns.Extra[key]
	if !ok || v <= 0 {
		return 0, fmt.Errorf("slimnoc: topology %q needs extra.%s", ns.Topology, key)
	}
	return v, nil
}

func buildSlimNoC(ns NetworkSpec) (*topo.Network, routing.Kind, error) {
	params := core.Params{Q: ns.Q, P: ns.Conc}
	if params.Q == 0 {
		if ns.Nodes <= 0 {
			return nil, routing.Kind{}, fmt.Errorf("slimnoc: topology sn needs q or nodes")
		}
		p, err := core.FromNetworkSize(ns.Nodes)
		if err != nil {
			return nil, routing.Kind{}, err
		}
		params = p
	} else if params.P == 0 {
		kp, err := core.KPrimeFor(params.Q)
		if err != nil {
			return nil, routing.Kind{}, err
		}
		params.P = (kp + 1) / 2
	}
	layoutName := ns.Layout
	if layoutName == "" {
		layoutName = "subgr"
	}
	le, ok := layouts.lookup(layoutName)
	if !ok {
		return nil, routing.Kind{}, fmt.Errorf("slimnoc: unknown layout %q (have %s)",
			layoutName, strings.Join(Layouts(), ", "))
	}
	s, err := core.New(params)
	if err != nil {
		return nil, routing.Kind{}, err
	}
	seed := ns.LayoutSeed
	if seed == 0 {
		seed = 1
	}
	net, err := s.Network(le.Layout, seed)
	if err != nil {
		return nil, routing.Kind{}, err
	}
	net.Name = fmt.Sprintf("sn_%s_%d", layoutName, s.N())
	return net, routing.Kind{Class: routing.ClassGeneric}, nil
}

func autoRouting(net *topo.Network, kind routing.Kind, vcs int) (routing.PathBuilder, sim.AdaptivePolicy, error) {
	pb, err := routing.NewRoutingFor(net, kind, vcs)
	return pb, nil, err
}

func adaptiveRouting(policy func(vcs int) sim.AdaptivePolicy) RoutingFactory {
	return func(net *topo.Network, kind routing.Kind, vcs int) (routing.PathBuilder, sim.AdaptivePolicy, error) {
		pb, err := routing.NewRoutingFor(net, kind, vcs)
		if err != nil {
			return nil, nil, err
		}
		return pb, policy(vcs), nil
	}
}

// Resolved defaults of the workload axes (zero spec fields fall back to
// these; the spec layer leaves zeros in place so point keys stay stable).
const (
	defaultBurstLen   = 8.0
	defaultDuty       = 0.25
	defaultModFactor  = 1.8
	defaultModPeriod  = 200.0
	defaultHotCount   = 4
	defaultShortFlits = 2
	defaultShortFrac  = 0.5
	defaultWindow     = 4
)

// ResolveTraffic returns the spec with the runtime defaults of its selected
// process, overlay and size mix filled in — the exact values the traffic
// factories use. It is the inverse direction from RunSpec.Normalized, which
// canonicalizes defaults to ABSENT fields for stable content addressing:
// normalize to hash and compare specs, resolve to display or analyze what a
// run actually did (the CSV sink resolves, so a defaulted burst point
// reports burst_len=8 rather than a physically impossible 0).
func ResolveTraffic(ts TrafficSpec) TrafficSpec {
	if ts.PacketFlits == 0 {
		ts.PacketFlits = 6
	}
	switch ts.Process {
	case "burst":
		if ts.BurstLen == 0 {
			ts.BurstLen = defaultBurstLen
		}
		if ts.Duty == 0 {
			ts.Duty = defaultDuty
		}
	case "mmpp":
		if ts.ModFactor == 0 {
			ts.ModFactor = defaultModFactor
		}
		if ts.ModPeriod == 0 {
			ts.ModPeriod = defaultModPeriod
		}
	case "reqreply":
		if ts.Window == 0 {
			ts.Window = defaultWindow
		}
		if ts.ShortFlits == 0 {
			ts.ShortFlits = defaultShortFlits
		}
	}
	if ts.HotspotFraction > 0 && ts.HotspotCount == 0 {
		ts.HotspotCount = defaultHotCount
	}
	if ts.SizeMix == "bimodal" {
		if ts.ShortFlits == 0 {
			ts.ShortFlits = defaultShortFlits
		}
		if ts.ShortFrac == 0 {
			ts.ShortFrac = defaultShortFrac
		}
	}
	return ts
}

// synthetic returns the factory composing the paper pattern with the spec's
// temporal process, hotspot overlay and packet-size mix — or, for the
// closed-loop reqreply process, the self-throttling request-reply source.
func synthetic(paperName string) TrafficFactory {
	return func(net *topo.Network, ts TrafficSpec) (sim.Source, error) {
		if err := ts.validate(); err != nil {
			return nil, err
		}
		ts = ResolveTraffic(ts)
		pat := traffic.PatternByName(paperName, net)
		if pat == nil {
			return nil, fmt.Errorf("slimnoc: pattern %q unavailable", paperName)
		}
		n := net.N()
		var spat traffic.Pattern = pat
		if ts.HotspotFraction > 0 {
			if ts.HotspotCount > n {
				return nil, fmt.Errorf("slimnoc: traffic.hotspot_count = %d exceeds the network's %d nodes", ts.HotspotCount, n)
			}
			spat = traffic.Hotspot{Frac: ts.HotspotFraction, K: ts.HotspotCount, N: n, Base: pat}
		}

		pe, ok := processes.lookup(ts.Process)
		if ts.Process == "" {
			pe, ok = ProcessEntry{}, true // nil process = Bernoulli composition
		}
		if !ok {
			return nil, fmt.Errorf("slimnoc: unknown traffic process %q (have %s)",
				ts.Process, strings.Join(Processes(), ", "))
		}
		if pe.ClosedLoop {
			return &traffic.ReqReply{N: n, Window: ts.Window, ReqFlits: ts.ShortFlits,
				ReplyFlits: ts.PacketFlits, Pattern: spat}, nil
		}

		if ts.Rate <= 0 {
			return nil, fmt.Errorf("slimnoc: pattern %q needs traffic.rate > 0", paperName)
		}
		var proc traffic.Process
		if pe.New != nil {
			p, err := pe.New(n, ts)
			if err != nil {
				return nil, err
			}
			proc = p
		}
		var sizer traffic.Sizer
		if ts.SizeMix == "bimodal" {
			sizer = traffic.Bimodal{Short: ts.ShortFlits, Long: ts.PacketFlits, ShortFrac: ts.ShortFrac}
		}
		return &traffic.Synthetic{N: n, Rate: ts.Rate, PacketFlits: ts.PacketFlits,
			Pattern: spat, Process: proc, Sizer: sizer}, nil
	}
}

func init() {
	RegisterTopology("sn", TopologyEntry{
		Build:   buildSlimNoC,
		Section: "§3 (Slim NoC construction, layouts §3.2-3.3)",
		Example: NetworkSpec{Topology: "sn", Q: 3, Conc: 3, Layout: "subgr"},
	})
	RegisterTopology("mesh", TopologyEntry{
		Build: func(ns NetworkSpec) (*topo.Network, routing.Kind, error) {
			if err := needGrid(ns); err != nil {
				return nil, routing.Kind{}, err
			}
			return topo.Mesh2D(ns.X, ns.Y, ns.Conc),
				routing.Kind{Class: routing.ClassMesh, RX: ns.X, RY: ns.Y}, nil
		},
		Section: "§5.1, Table 4 (concentrated mesh baseline)",
		Example: NetworkSpec{Topology: "mesh", X: 4, Y: 4, Conc: 2},
	})
	RegisterTopology("torus", TopologyEntry{
		Build: func(ns NetworkSpec) (*topo.Network, routing.Kind, error) {
			if err := needGrid(ns); err != nil {
				return nil, routing.Kind{}, err
			}
			return topo.Torus2D(ns.X, ns.Y, ns.Conc),
				routing.Kind{Class: routing.ClassTorus, RX: ns.X, RY: ns.Y}, nil
		},
		Section: "§5.1, Table 4 (2D torus baseline)",
		Example: NetworkSpec{Topology: "torus", X: 4, Y: 4, Conc: 2},
	})
	RegisterTopology("flatfly", TopologyEntry{
		Build: func(ns NetworkSpec) (*topo.Network, routing.Kind, error) {
			if err := needGrid(ns); err != nil {
				return nil, routing.Kind{}, err
			}
			return topo.FBF(ns.X, ns.Y, ns.Conc),
				routing.Kind{Class: routing.ClassFBF, RX: ns.X, RY: ns.Y}, nil
		},
		Section: "§5.1, Table 4 (flattened butterfly baseline)",
		Example: NetworkSpec{Topology: "flatfly", X: 4, Y: 4, Conc: 2},
	})
	RegisterTopology("pflatfly", TopologyEntry{
		Build: func(ns NetworkSpec) (*topo.Network, routing.Kind, error) {
			if err := needGrid(ns); err != nil {
				return nil, routing.Kind{}, err
			}
			if ns.PartsX <= 0 || ns.PartsY <= 0 {
				return nil, routing.Kind{}, fmt.Errorf("slimnoc: topology pflatfly needs parts_x and parts_y")
			}
			return topo.PFBF(ns.PartsX, ns.PartsY, ns.X, ns.Y, ns.Conc),
				routing.Kind{Class: routing.ClassPFBF, RX: ns.X, RY: ns.Y, PX: ns.PartsX, PY: ns.PartsY}, nil
		},
		Section: "§5.1, Table 4 (partitioned flattened butterfly baseline)",
		Example: NetworkSpec{Topology: "pflatfly", PartsX: 2, PartsY: 1, X: 3, Y: 3, Conc: 3},
	})
	RegisterTopology("dragonfly", TopologyEntry{
		Build: func(ns NetworkSpec) (*topo.Network, routing.Kind, error) {
			a, err := extraParam(ns, "a")
			if err != nil {
				return nil, routing.Kind{}, err
			}
			h, err := extraParam(ns, "h")
			if err != nil {
				return nil, routing.Kind{}, err
			}
			g, err := extraParam(ns, "g")
			if err != nil {
				return nil, routing.Kind{}, err
			}
			if ns.Conc <= 0 {
				return nil, routing.Kind{}, fmt.Errorf("slimnoc: topology dragonfly needs conc")
			}
			net, err := topo.Dragonfly(a, h, g, ns.Conc)
			return net, routing.Kind{Class: routing.ClassGeneric}, err
		},
		Section: "§2.2, Fig. 3 (Dragonfly straight on-chip)",
		Example: NetworkSpec{Topology: "dragonfly", Conc: 4, Extra: map[string]int{"a": 5, "h": 2, "g": 10}},
	})
	RegisterTopology("clos", TopologyEntry{
		Build: func(ns NetworkSpec) (*topo.Network, routing.Kind, error) {
			leaves, err := extraParam(ns, "leaves")
			if err != nil {
				return nil, routing.Kind{}, err
			}
			spines, err := extraParam(ns, "spines")
			if err != nil {
				return nil, routing.Kind{}, err
			}
			if ns.Conc <= 0 {
				return nil, routing.Kind{}, fmt.Errorf("slimnoc: topology clos needs conc")
			}
			return topo.FoldedClos(leaves, spines, ns.Conc),
				routing.Kind{Class: routing.ClassGeneric}, nil
		},
		Section: "§5.5 (folded Clos comparison; analytical models only)",
		Example: NetworkSpec{Topology: "clos", Conc: 8, Extra: map[string]int{"leaves": 25, "spines": 7}},
	})

	RegisterLayout("basic", LayoutEntry{Layout: core.LayoutBasic, Section: "§3.2.1 (baseline placement)"})
	RegisterLayout("subgr", LayoutEntry{Layout: core.LayoutSubgroup, Section: "§3.3 (subgroup layout)"})
	RegisterLayout("gr", LayoutEntry{Layout: core.LayoutGroup, Section: "§3.3 (group layout)"})
	RegisterLayout("rand", LayoutEntry{Layout: core.LayoutRand, Section: "§3.3 (randomized layout)"})

	RegisterRouting("auto", RoutingEntry{
		New:     autoRouting,
		Section: "§4.3, §5.1 (topology-appropriate deadlock-free static minimal)",
	})
	RegisterRouting("minimal", RoutingEntry{
		New: func(net *topo.Network, kind routing.Kind, vcs int) (routing.PathBuilder, sim.AdaptivePolicy, error) {
			return &routing.MinimalRouting{P: routing.NewMinimal(net), VCs: vcs}, nil, nil
		},
		Section: "§5.1 (generic minimal with ascending VCs)",
	})
	RegisterRouting("ugal-l", RoutingEntry{
		New: adaptiveRouting(func(vcs int) sim.AdaptivePolicy {
			return &sim.UGAL{Global: false, VCs: vcs}
		}),
		Section:  "§6, Fig. 20 (UGAL, local congestion knowledge)",
		Adaptive: true,
	})
	RegisterRouting("ugal-g", RoutingEntry{
		New: adaptiveRouting(func(vcs int) sim.AdaptivePolicy {
			return &sim.UGAL{Global: true, VCs: vcs}
		}),
		Section:  "§6, Fig. 20 (UGAL, global congestion knowledge)",
		Adaptive: true,
	})
	RegisterRouting("min-adapt", RoutingEntry{
		New: adaptiveRouting(func(vcs int) sim.AdaptivePolicy {
			return &sim.MinAdaptive{VCs: vcs}
		}),
		Section:  "§6, Fig. 20 (minimal adaptive, XY-ADAPT analogue)",
		Adaptive: true,
	})

	RegisterScheme("eb", SchemeEntry{
		New: func(b BufferingSpec, h, vcs int) (SchemeConfig, error) {
			cfg := SchemeConfig{Scheme: sim.EdgeBuffers, CBCap: b.CBCap}
			if b.EdgeCap > 0 {
				c := b.EdgeCap
				cfg.BufCap = func(int) int { return c }
			}
			return cfg, nil
		},
		Section: "§5.1 (EB-Small: 5-flit per-VC edge buffers)",
	})
	RegisterScheme("eb-large", SchemeEntry{
		New: func(b BufferingSpec, h, vcs int) (SchemeConfig, error) {
			return SchemeConfig{Scheme: sim.EdgeBuffers, BufCap: func(int) int { return 15 }, CBCap: b.CBCap}, nil
		},
		Section: "§5.1 (EB-Large: 15-flit per-VC edge buffers)",
	})
	RegisterScheme("eb-var", SchemeEntry{
		New: func(b BufferingSpec, h, vcs int) (SchemeConfig, error) {
			return SchemeConfig{Scheme: sim.EdgeBuffers, BufCap: sim.EdgeBufVar(h, vcs), CBCap: b.CBCap}, nil
		},
		Section: "§3.2.2 (EB-Var: wire-length-proportional buffers)",
	})
	RegisterScheme("el", SchemeEntry{
		New: func(b BufferingSpec, h, vcs int) (SchemeConfig, error) {
			return SchemeConfig{Scheme: sim.ElasticLinks, CBCap: b.CBCap}, nil
		},
		Section: "§4.2 (ElastiStore-style elastic links)",
	})
	RegisterScheme("cbr", SchemeEntry{
		New: func(b BufferingSpec, h, vcs int) (SchemeConfig, error) {
			return SchemeConfig{Scheme: sim.CentralBuffer, CBCap: b.CBCap}, nil
		},
		Section: "§4.1 (central-buffer router, 2-cycle bypass)",
	})
	// CLI-compatible aliases for the historical snsim scheme names.
	if e, ok := schemes.lookup("eb-large"); ok {
		RegisterScheme("eblarge", e)
	}
	if e, ok := schemes.lookup("eb-var"); ok {
		RegisterScheme("ebvar", e)
	}

	RegisterTraffic("rnd", TrafficEntry{
		New: synthetic("RND"), Section: "§5.1 (uniform random)",
		Example: TrafficSpec{Pattern: "rnd", Rate: 0.06},
	})
	RegisterTraffic("shf", TrafficEntry{
		New: synthetic("SHF"), Section: "§5.1 (bit shuffle)",
		Example: TrafficSpec{Pattern: "shf", Rate: 0.06},
	})
	RegisterTraffic("rev", TrafficEntry{
		New: synthetic("REV"), Section: "§5.1 (bit reversal)",
		Example: TrafficSpec{Pattern: "rev", Rate: 0.06},
	})
	RegisterTraffic("adv1", TrafficEntry{
		New: synthetic("ADV1"), Section: "§5.1 (adversarial: farthest-partner permutation)",
		Example: TrafficSpec{Pattern: "adv1", Rate: 0.06},
	})
	RegisterTraffic("adv2", TrafficEntry{
		New: synthetic("ADV2"), Section: "§5.1 (adversarial: cross-die offset)",
		Example: TrafficSpec{Pattern: "adv2", Rate: 0.06},
	})
	RegisterTraffic("asym", TrafficEntry{
		New: synthetic("ASYM"), Section: "§6, Fig. 20 (asymmetric)",
		Example: TrafficSpec{Pattern: "asym", Rate: 0.06},
	})
	RegisterProcess("bernoulli", ProcessEntry{
		// Explicit spelling of the default: specs normalize it back to the
		// empty string, and the nil process inside Synthetic is Bernoulli.
		Section: "§5.1 (open-loop memoryless injection)",
		Example: TrafficSpec{Pattern: "rnd", Rate: 0.06, Process: "bernoulli"},
	})
	RegisterProcess("burst", ProcessEntry{
		New: func(n int, ts TrafficSpec) (traffic.Process, error) {
			bl := ts.BurstLen
			if bl == 0 {
				bl = defaultBurstLen
			}
			duty := ts.Duty
			if duty == 0 {
				duty = defaultDuty
			}
			return traffic.NewOnOff(n, bl, duty), nil
		},
		Section: "related work (bursty on/off arrivals, geometric burst lengths)",
		Example: TrafficSpec{Pattern: "rnd", Rate: 0.06, Process: "burst", BurstLen: 8, Duty: 0.25},
	})
	RegisterProcess("mmpp", ProcessEntry{
		New: func(n int, ts TrafficSpec) (traffic.Process, error) {
			f := ts.ModFactor
			if f == 0 {
				f = defaultModFactor
			}
			p := ts.ModPeriod
			if p == 0 {
				p = defaultModPeriod
			}
			return traffic.NewModulated(f, p), nil
		},
		Section: "related work (Markov-modulated injection epochs)",
		Example: TrafficSpec{Pattern: "rnd", Rate: 0.06, Process: "mmpp", ModFactor: 1.8, ModPeriod: 200},
	})
	RegisterProcess("reqreply", ProcessEntry{
		ClosedLoop: true,
		Section:    "related work (closed-loop memory traffic, cf. §5.1 read/reply sizes)",
		Example:    TrafficSpec{Pattern: "rnd", Process: "reqreply", Window: 4},
	})

	RegisterTraffic("trace", TrafficEntry{
		New: func(net *topo.Network, ts TrafficSpec) (sim.Source, error) {
			b := trace.BenchmarkByName(ts.Trace)
			if b == nil {
				return nil, fmt.Errorf("slimnoc: unknown trace benchmark %q", ts.Trace)
			}
			return trace.NewSource(*b, net.N()), nil
		},
		Section: "§5.1 (PARSEC/SPLASH trace substitute)",
		Example: TrafficSpec{Pattern: "trace", Trace: "fft"},
	})
}
