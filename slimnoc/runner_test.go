package slimnoc

import (
	"context"
	"errors"
	"testing"
)

// TestCancellationReturnsPartialResult cancels a long run from its own
// progress callback and checks the run stops promptly with the metrics
// accumulated so far.
func TestCancellationReturnsPartialResult(t *testing.T) {
	spec := RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.1},
		Sim:     SimSpec{WarmupCycles: 1000, MeasureCycles: 1000000, DrainCycles: 100000, Seed: 5},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var lastSeen int64
	res, err := Run(ctx, spec, WithProgress(512, func(p Progress) {
		lastSeen = p.Cycle
		if p.Cycle >= 2048 {
			cancel()
		}
	}))
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Metrics.Cycles >= 1200000 {
		t.Errorf("run completed (%d cycles) despite cancellation", res.Metrics.Cycles)
	}
	// The next poll after the cancelling callback is one interval later.
	if res.Metrics.Cycles > lastSeen+512 {
		t.Errorf("run stopped at cycle %d, %d cycles after cancellation", res.Metrics.Cycles, res.Metrics.Cycles-lastSeen)
	}
	if res.Metrics.Generated == 0 {
		t.Error("partial result carries no accumulated statistics")
	}
	// A cut-short run must not masquerade as a saturated network, and its
	// rates are normalised over the cycles that actually ran.
	if res.Metrics.Saturated {
		t.Error("partial result reports saturation")
	}
	if res.Metrics.OfferedLoad < 0.05 || res.Metrics.OfferedLoad > 0.2 {
		t.Errorf("partial offered load %.4f not normalised over elapsed cycles", res.Metrics.OfferedLoad)
	}
}

// TestProgressStreaming checks the callback cadence and final completion.
func TestProgressStreaming(t *testing.T) {
	spec := RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
		Sim:     SimSpec{WarmupCycles: 200, MeasureCycles: 800, DrainCycles: 1000, Seed: 5},
	}
	var calls int
	var last Progress
	res, err := Run(t.Context(), spec, WithProgress(500, func(p Progress) {
		calls++
		last = p
	}))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 { // cycles 0, 500, 1000, 1500 of 2000
		t.Errorf("progress called %d times, want 4", calls)
	}
	if last.TotalCycles != 2000 || last.Cycle != 1500 {
		t.Errorf("last snapshot %+v", last)
	}
	if res.Metrics.Cycles != 2000 {
		t.Errorf("completed run reports %d cycles, want 2000", res.Metrics.Cycles)
	}
}

// TestWithNetworkReuse runs two spec points against one prebuilt network.
func TestWithNetworkReuse(t *testing.T) {
	net, kind, err := BuildNetwork(NetworkSpec{Preset: "t2d54"})
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0.02, 0.05} {
		spec := RunSpec{
			Traffic: TrafficSpec{Pattern: "rnd", Rate: rate},
			Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 400, DrainCycles: 800, Seed: 5},
		}
		res, err := Run(t.Context(), spec, WithNetwork(net, kind))
		if err != nil {
			t.Fatal(err)
		}
		if res.Network.Name != "t2d54" {
			t.Errorf("result network %q", res.Network.Name)
		}
		if res.Metrics.Delivered == 0 {
			t.Errorf("rate %.2f delivered nothing", rate)
		}
	}
}

// TestRunnerErrors checks that unknown names surface as errors, not panics.
func TestRunnerErrors(t *testing.T) {
	base := RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
		Sim:     SimSpec{WarmupCycles: 10, MeasureCycles: 10, DrainCycles: 10},
	}
	bad := base
	bad.Routing.Algorithm = "magic"
	if _, err := Run(t.Context(), bad); err == nil {
		t.Error("unknown routing accepted")
	}
	bad = base
	bad.Buffering.Scheme = "bottomless"
	if _, err := Run(t.Context(), bad); err == nil {
		t.Error("unknown scheme accepted")
	}
	bad = base
	bad.Traffic.Pattern = "xxx"
	if _, err := Run(t.Context(), bad); err == nil {
		t.Error("unknown pattern accepted")
	}
	bad = base
	bad.Traffic.Rate = 0
	if _, err := Run(t.Context(), bad); err == nil {
		t.Error("zero-rate synthetic traffic accepted")
	}
	bad = base
	bad.Network = NetworkSpec{Preset: "nope"}
	if _, err := Run(t.Context(), bad); err == nil {
		t.Error("unknown preset accepted")
	}
}
