package slimnoc

// Regression pins for listing order: every enumeration the facade exposes
// (registries, presets) is backed by a map, so an accidental switch to raw
// map iteration would make listing order — and anything rendered from it,
// like report columns or campaign expansion order — vary per process. The
// detlint maporder analyzer guards the implementation; these tests pin the
// observable contract: sorted, duplicate-free, and stable across calls.

import (
	"sort"
	"testing"
)

func TestListingsSortedAndStable(t *testing.T) {
	listings := map[string]func() []string{
		"Topologies": Topologies,
		"Routings":   Routings,
		"Traffics":   Traffics,
		"Processes":  Processes,
		"Schemes":    Schemes,
		"Layouts":    Layouts,
		"Presets":    Presets,
	}
	names := make([]string, 0, len(listings))
	for name := range listings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		list := listings[name]
		got := list()
		if len(got) == 0 {
			t.Errorf("%s() is empty; registration did not run", name)
			continue
		}
		if !sort.StringsAreSorted(got) {
			t.Errorf("%s() is not sorted: %q", name, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Errorf("%s() contains duplicate %q", name, got[i])
			}
		}
		for call := 0; call < 3; call++ {
			again := list()
			if len(again) != len(got) {
				t.Fatalf("%s() length changed between calls: %d then %d", name, len(got), len(again))
			}
			for i := range got {
				if again[i] != got[i] {
					t.Errorf("%s() order changed between calls at %d: %q then %q", name, i, got[i], again[i])
				}
			}
		}
	}
}
